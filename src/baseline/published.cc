#include "baseline/published.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace baseline {

const std::vector<PublishedRow> &
publishedFigure5()
{
    // Time series digitized from figure 5a; memory from figure 5b.
    // DangSan numbers cross-checked against the EuroSys'17 paper;
    // off-chart bars carry the figure's printed annotations
    // (e.g. DangSan omnetpp 2.9x, xalancbmk 3.8x, Boehm 31.6x).
    static const std::vector<PublishedRow> rows = {
        //           bench      cvk-t  oscar psweep dangsan boehm  cvk-m dang-m oscar-m
        {"astar",      1.02, 1.12, 1.05, 1.06, 1.15, 1.05, 1.50, 1.10},
        {"bzip2",      1.00, 1.01, 1.00, 1.01, 1.05, 1.02, 1.10, 1.01},
        {"dealII",     1.08, 2.90, 1.25, 1.46, 4.60, 1.15, 4.10, 1.40},
        {"gobmk",      1.00, 1.05, 1.02, 1.05, 1.10, 1.03, 1.20, 1.05},
        {"h264ref",    1.00, 1.04, 1.01, 1.02, 1.08, 1.02, 1.15, 1.03},
        {"hmmer",      1.00, 1.06, 1.02, 1.01, 1.12, 1.02, 1.18, 1.05},
        {"lbm",        1.00, 1.00, 1.00, 1.00, 1.02, 1.01, 1.05, 1.00},
        {"libquantum", 1.00, 1.01, 1.00, 1.00, 1.04, 1.01, 1.08, 1.01},
        {"mcf",        1.01, 1.10, 1.04, 1.01, 1.30, 1.06, 1.40, 1.08},
        {"milc",       1.01, 1.06, 1.03, 1.01, 1.20, 1.04, 1.25, 1.05},
        {"omnetpp",    1.15, 4.20, 1.60, 2.90, 9.40, 1.28, 9.70, 1.80},
        {"povray",     1.00, 1.15, 1.04, 1.19, 1.25, 1.04, 1.60, 1.12},
        {"sjeng",      1.00, 1.02, 1.00, 1.01, 1.05, 1.02, 1.10, 1.02},
        {"soplex",     1.07, 1.30, 1.10, 1.02, 2.00, 1.10, 1.70, 1.20},
        {"sphinx3",    1.01, 1.20, 1.05, 1.05, 1.40, 1.05, 1.45, 1.10},
        {"xalancbmk",  1.51, 3.80, 2.50, 7.50, 31.60, 1.35, 14.40, 2.00},
    };
    return rows;
}

const PublishedRow &
publishedRowFor(const std::string &benchmark)
{
    for (const auto &row : publishedFigure5()) {
        if (row.benchmark == benchmark)
            return row;
    }
    fatal("no published figure-5 row for benchmark '%s'",
          benchmark.c_str());
}

PaperHeadlines
paperHeadlines()
{
    return PaperHeadlines{};
}

} // namespace baseline
} // namespace cherivoke

/**
 * @file
 * A pSweeper-style concurrent pointer sweeper (Liu et al., CCS 2018;
 * paper §7.1): pointer stores are logged to a global live-pointer
 * list; freed objects are deferred on a to-free list; a sweeper pass
 * (concurrent in the original) walks the live-pointer list and
 * nullifies entries pointing into deferred objects, after which the
 * objects are released.
 *
 * Structural contrast with CHERIvoke: the sweep walks *metadata
 * proportional to pointer stores* (and can miss hidden pointers),
 * while CHERIvoke's sweep walks memory itself with exact tags.
 */

#ifndef CHERIVOKE_BASELINE_PSWEEPER_HH
#define CHERIVOKE_BASELINE_PSWEEPER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "alloc/dlmalloc.hh"
#include "mem/addr_space.hh"

namespace cherivoke {
namespace baseline {

/** Sweep statistics for the cost model. */
struct PSweeperStats
{
    uint64_t loggedStores = 0;
    uint64_t sweeps = 0;
    uint64_t entriesWalked = 0;
    uint64_t nullified = 0;
    uint64_t objectsReleased = 0;
};

/** The pSweeper-style wrapper. */
class PSweeper
{
  public:
    PSweeper(mem::AddressSpace &space, alloc::DlAllocator &dl,
             uint64_t defer_budget_bytes = 1 * MiB)
        : space_(&space), dl_(&dl),
          defer_budget_bytes_(defer_budget_bytes)
    {}

    cap::Capability malloc(uint64_t size) { return dl_->malloc(size); }

    /** Instrumented pointer store: logged to the live-pointer list. */
    void recordPointerStore(uint64_t location,
                            const cap::Capability &value);

    /** Deferred free: the object joins the to-free list; an
     *  automatic sweep runs when the budget is exceeded. */
    void free(const cap::Capability &capability);

    /** Walk the live-pointer list, nullify entries into deferred
     *  objects, release the objects. */
    void sweepNow();

    const PSweeperStats &stats() const { return stats_; }
    uint64_t deferredBytes() const { return deferred_bytes_; }

  private:
    mem::AddressSpace *space_;
    alloc::DlAllocator *dl_;
    uint64_t defer_budget_bytes_;
    std::vector<uint64_t> pointer_log_; //!< locations of ptr stores
    std::map<uint64_t, uint64_t> deferred_; //!< base -> size
    uint64_t deferred_bytes_ = 0;
    PSweeperStats stats_;
};

} // namespace baseline
} // namespace cherivoke

#endif // CHERIVOKE_BASELINE_PSWEEPER_HH

#include "baseline/boehm_gc.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace baseline {

cap::Capability
BoehmGc::gcAlloc(uint64_t size)
{
    const cap::Capability c = dl_->malloc(size);
    objects_[c.base()] = dl_->usableSize(c.base());
    return c;
}

void
BoehmGc::explicitFree(const cap::Capability &capability)
{
    const uint64_t base = capability.base();
    auto it = objects_.find(base);
    CHERIVOKE_ASSERT(it != objects_.end(),
                     "(explicitFree of unregistered object)");
    objects_.erase(it);
    dl_->freeAddr(base);
}

uint64_t
BoehmGc::registeredBytes() const
{
    uint64_t total = 0;
    for (const auto &[base, size] : objects_)
        total += size;
    return total;
}

void
BoehmGc::markFrom(uint64_t addr, uint64_t size, GcStats &stats,
                  std::vector<uint64_t> &worklist)
{
    // Conservative scan: every 8-byte word is a potential pointer.
    auto &memory = space_->memory();
    for (uint64_t a = addr; a + 8 <= addr + size; a += 8) {
        ++stats.wordsScanned;
        uint64_t word = 0;
        memory.peekBytes(a, &word, 8);
        if (word == 0)
            continue;
        // Find the allocation containing `word`, if any
        // (interior pointers count, as in BDW).
        auto it = objects_.upper_bound(word);
        if (it == objects_.begin())
            continue;
        --it;
        if (word >= it->first && word < it->first + it->second) {
            if (!marks_[it->first]) {
                marks_[it->first] = true;
                ++stats.objectsMarked;
                worklist.push_back(it->first);
            }
        }
    }
}

GcStats
BoehmGc::collect()
{
    GcStats stats;
    marks_.clear();
    for (const auto &[base, size] : objects_)
        marks_[base] = false;

    std::vector<uint64_t> worklist;

    // Roots: registers, stack, globals.
    space_->registers().forEach([&](cap::Capability &reg) {
        ++stats.rootsScanned;
        if (!reg.tag())
            return;
        const uint64_t word = reg.address();
        auto it = objects_.upper_bound(word);
        if (it != objects_.begin()) {
            --it;
            if (word >= it->first && word < it->first + it->second &&
                !marks_[it->first]) {
                marks_[it->first] = true;
                ++stats.objectsMarked;
                worklist.push_back(it->first);
            }
        }
    });
    markFrom(space_->globals().base, space_->globals().size, stats,
             worklist);
    markFrom(space_->stack().base, space_->stack().size, stats,
             worklist);
    stats.rootsScanned += stats.wordsScanned;

    // Transitive marking: an irregular pointer-chasing graph walk —
    // exactly what makes GC marking slower than a linear sweep
    // (§7.3).
    while (!worklist.empty()) {
        const uint64_t obj = worklist.back();
        worklist.pop_back();
        ++stats.markVisits;
        markFrom(obj, objects_.at(obj), stats, worklist);
    }

    // Sweep: free unmarked objects.
    for (auto it = objects_.begin(); it != objects_.end();) {
        if (!marks_[it->first]) {
            stats.bytesFreed += it->second;
            ++stats.objectsFreed;
            dl_->freeAddr(it->first);
            it = objects_.erase(it);
        } else {
            ++it;
        }
    }
    return stats;
}

} // namespace baseline
} // namespace cherivoke

/**
 * @file
 * Address-space layout for a simulated CheriABI process: globals,
 * stack, a growable heap, the register file, and the revocation
 * shadow region at a fixed transform from the heap (paper §5.2:
 * "each mmap() call is accompanied by a smaller mapping at a fixed
 * transform from the original allocation").
 *
 * An AddressSpace normally owns its TaggedMemory, but it can also be
 * bound to an *external* shared TaggedMemory with a relocated segment
 * Layout: that is how the tenant subsystem carves N isolated process
 * images out of one simulated physical memory, so their sweeps and
 * shadow maps genuinely contend on shared state.
 */

#ifndef CHERIVOKE_MEM_ADDR_SPACE_HH
#define CHERIVOKE_MEM_ADDR_SPACE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cap/capability.hh"
#include "mem/tagged_memory.hh"

namespace cherivoke {
namespace mem {

/** Fixed segment bases of the simulated process image. */
constexpr uint64_t kGlobalsBase = 0x0000'1000'0000ULL;
constexpr uint64_t kHeapBase    = 0x0000'4000'0000ULL;
constexpr uint64_t kStackBase   = 0x0000'7f00'0000ULL;
/** Shadow region: far above everything it shadows. */
constexpr uint64_t kShadowBase  = 0x0100'0000'0000ULL;

/** shadow address of a heap address: 1 shadow byte per 128 bytes. */
constexpr uint64_t
shadowAddrOf(uint64_t addr)
{
    return kShadowBase + (addr >> 7);
}

/** A named mapped region. */
struct Segment
{
    std::string name;
    uint64_t base = 0;
    uint64_t size = 0;

    uint64_t end() const { return base + size; }
};

/** The architectural capability register file (32 registers). */
class RegisterFile
{
  public:
    static constexpr size_t kNumRegs = 32;

    cap::Capability &reg(size_t i) { return regs_.at(i); }
    const cap::Capability &reg(size_t i) const { return regs_.at(i); }

    /** Sweep hook: visit every register (paper §3.3 sweeps registers). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &r : regs_)
            fn(r);
    }

  private:
    std::array<cap::Capability, kNumRegs> regs_{};
};

/**
 * The simulated process address space. Owns the tagged memory, lays
 * out globals/stack segments eagerly, and grows the heap via a
 * simulated mmap that also maps the corresponding shadow pages.
 */
class AddressSpace
{
  public:
    /**
     * Segment bases of one process image. The defaults are the
     * classic single-process layout; the tenant subsystem shifts all
     * three bases by a per-tenant stride to pack many images into
     * one shared TaggedMemory. `stackBase` doubles as the heap
     * limit, so a layout also bounds how far mmapHeap may grow.
     */
    struct Layout
    {
        uint64_t globalsBase = kGlobalsBase;
        uint64_t heapBase = kHeapBase;
        uint64_t stackBase = kStackBase;

        /** The default layout shifted up by @p offset bytes. */
        Layout shifted(uint64_t offset) const;
    };

    /**
     * @param globals_size size of the .data/.bss segment
     * @param stack_size size of the stack segment
     */
    explicit AddressSpace(uint64_t globals_size = 4 * MiB,
                          uint64_t stack_size = 8 * MiB);

    /**
     * Bind the process image to an external @p memory shared with
     * other address spaces, laying its segments out per @p layout.
     * The caller must keep @p memory alive and ensure layouts of
     * co-resident images are disjoint — overlapping segments would
     * silently alias each other's pages.
     */
    AddressSpace(TaggedMemory &memory, const Layout &layout,
                 uint64_t globals_size = 4 * MiB,
                 uint64_t stack_size = 8 * MiB);

    TaggedMemory &memory() { return *mem_; }
    const TaggedMemory &memory() const { return *mem_; }
    RegisterFile &registers() { return regs_; }

    const Layout &layout() const { return layout_; }

    /**
     * Simulated mmap for heap growth: maps @p size bytes (page
     * rounded) at the current heap break, plus the shadow pages that
     * cover the new region. Returns the mapped base.
     */
    uint64_t mmapHeap(uint64_t size);

    /** Unmap a heap region and its shadow (paper §5.2). */
    void munmapHeap(uint64_t base, uint64_t size);

    /** Regions the revocation sweep must cover: globals, stack, and
     *  every live heap mapping. Excludes the shadow region (it holds
     *  no capabilities and is CapDirty-clean by construction). */
    std::vector<Segment> sweepableSegments() const;

    /** Current live heap mappings. */
    const std::vector<Segment> &heapSegments() const { return heap_; }

    /** Total bytes currently mapped for the heap. */
    uint64_t heapMappedBytes() const;

    const Segment &globals() const { return globals_; }
    const Segment &stack() const { return stack_; }

    /** Whole-address-space capability for the TCB (allocator). Its
     *  base (0) is never inside a quarantined range, satisfying the
     *  §3.6 requirement that sweeps never revoke allocator access. */
    const cap::Capability &rootCap() const { return root_; }

  private:
    void mapShadowFor(uint64_t base, uint64_t size);
    void layOut(uint64_t globals_size, uint64_t stack_size);

    std::unique_ptr<TaggedMemory> owned_; //!< empty when shared
    TaggedMemory *mem_;
    Layout layout_;
    RegisterFile regs_;
    Segment globals_;
    Segment stack_;
    std::vector<Segment> heap_;
    uint64_t heap_brk_ = kHeapBase;
    cap::Capability root_;
};

} // namespace mem
} // namespace cherivoke

#endif // CHERIVOKE_MEM_ADDR_SPACE_HH

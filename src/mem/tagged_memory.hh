/**
 * @file
 * Tagged memory: the simulated virtual address space with one validity
 * tag per 16-byte granule (paper §2.2).
 *
 * The tag is the architectural feature CHERIvoke is built on: it
 * distinguishes capability words from data with neither false
 * positives nor false negatives. Non-capability writes clear the tags
 * of every granule they touch; capability stores set exactly one tag
 * and mark the page's PTE CapDirty.
 *
 * Checked accessors take an authorising capability and enforce the
 * CheriABI rules (tag, bounds, permissions); raw accessors exist for
 * the trusted computing base (the allocator and the revoker).
 */

#ifndef CHERIVOKE_MEM_TAGGED_MEMORY_HH
#define CHERIVOKE_MEM_TAGGED_MEMORY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "cap/capability.hh"
#include "mem/page_table.hh"
#include "stats/counters.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/units.hh"

namespace cherivoke {
namespace mem {

/** Backing store for one simulated page: data plus granule tags. */
struct Page
{
    alignas(16) std::array<uint8_t, kPageBytes> data{};
    /** One bit per 16-byte granule: 256 bits. */
    std::array<uint64_t, kGranulesPerPage / 64> tags{};
    /** Cached population count of tags, for cheap page-level queries. */
    uint32_t tagCount = 0;

    bool granuleTag(unsigned g) const
    {
        return (tags[g >> 6] >> (g & 63)) & 1;
    }
    void setGranuleTag(unsigned g);
    void clearGranuleTag(unsigned g);
};

/**
 * A raw host window onto one simulated page's backing store: the
 * mutator-side analogue of the sweeper's cached region pages. The
 * allocator's chunk metadata (boundary tags, bin links) clusters on
 * one or two pages per chunk, so alloc::ChunkView resolves the page
 * once and then reads/writes fields through plain host loads and
 * stores instead of paying a page lookup, a page-table walk and a
 * string-keyed counter bump per field.
 *
 * The span is part of the trusted computing base: accesses skip
 * page-table protection checks (the allocator only touches its own
 * heap metadata) but MUST preserve tagged-memory semantics — every
 * write invalidates the granule tag it overwrites, exactly as
 * TaggedMemory::writeBytes would. writeU64 enforces that here;
 * TaggedMemory::assertSpanSemantics() cross-checks a span against
 * the checked path in tests.
 *
 * A span stays valid for the lifetime of the owning TaggedMemory
 * (pages are never deallocated while the directory lives).
 */
class HostSpan
{
  public:
    HostSpan() = default;
    HostSpan(Page *page, uint64_t page_base)
        : page_(page), base_(page_base)
    {}

    /** Is [addr, addr+size) inside this span's page? */
    bool
    covers(uint64_t addr, uint64_t size) const
    {
        return page_ && addr - base_ <= kPageBytes - size;
    }

    /** Raw 8-byte load; caller guarantees covers(addr, 8). */
    uint64_t
    readU64(uint64_t addr) const
    {
        uint64_t value;
        std::memcpy(&value, page_->data.data() + (addr - base_), 8);
        return value;
    }

    /**
     * Raw 8-byte store with data-write tag semantics: the covered
     * granule's capability tag is invalidated (an untagged overwrite
     * of a capability word must kill it, §2.2). Caller guarantees
     * covers(addr, 8); the store must not straddle a granule.
     */
    void
    writeU64(uint64_t addr, uint64_t value)
    {
        CHERIVOKE_ASSERT(isAligned(addr, 8),
                         "(raw span store must be 8-byte aligned)");
        const uint64_t off = addr - base_;
        std::memcpy(page_->data.data() + off, &value, 8);
        page_->clearGranuleTag(
            static_cast<unsigned>(off >> kGranuleShift));
    }

    uint64_t pageBase() const { return base_; }
    explicit operator bool() const { return page_ != nullptr; }

  private:
    Page *page_ = nullptr;
    uint64_t base_ = 0;
};

/**
 * Two-level direct-map page directory: the sweep/paint hot paths'
 * O(1) replacement for the former std::map page store.
 *
 * The 36-bit VPN (48-bit virtual addresses) splits into an 18-bit
 * root index and an 18-bit leaf index; each leaf table spans 1 GiB
 * of address space. Both levels hold atomic pointers:
 *
 *  - lookups are lock-free (two acquire loads), so sweep workers and
 *    the §3.3 shadow lookup never contend;
 *  - materialisation takes a striped lock keyed by the slot, so
 *    several painter threads can fault in shadow pages concurrently
 *    without a global bottleneck, and double-allocation is impossible.
 *
 * Pages are never deallocated while the directory lives, so a pointer
 * obtained from lookup() stays valid for the directory's lifetime —
 * the property the sweeper relies on when it caches region pages.
 */
class PageDirectory
{
  public:
    static constexpr unsigned kVaBits = 48;
    static constexpr unsigned kLeafBits = 18;
    static constexpr unsigned kRootBits =
        kVaBits - kPageShift - kLeafBits;
    static constexpr size_t kLeafEntries = size_t{1} << kLeafBits;
    static constexpr size_t kRootEntries = size_t{1} << kRootBits;
    static constexpr uint64_t kMaxVpn = uint64_t{1}
                                        << (kRootBits + kLeafBits);
    static constexpr size_t kStripes = 64;

    PageDirectory();
    ~PageDirectory();

    PageDirectory(const PageDirectory &) = delete;
    PageDirectory &operator=(const PageDirectory &) = delete;

    /** Lock-free O(1) lookup; nullptr when never materialised (or
     *  the vpn is beyond the supported virtual-address width). */
    Page *
    lookup(uint64_t vpn) const
    {
        if (vpn >= kMaxVpn)
            return nullptr;
        const Leaf *leaf =
            root_[vpn >> kLeafBits].load(std::memory_order_acquire);
        if (!leaf)
            return nullptr;
        return leaf->slots[vpn & (kLeafEntries - 1)].load(
            std::memory_order_acquire);
    }

    /** Materialise-on-demand; striped-lock slow path, lock-free when
     *  the page already exists. Thread-safe. */
    Page &getOrCreate(uint64_t vpn);

    /**
     * Deallocate every resident page in [vpn_lo, vpn_hi) — the one
     * exception to "pages are never deallocated": tenant teardown.
     * The caller must guarantee quiescence over the range (no sweep
     * in flight, no cached HostSpan/Page pointers into it — i.e. the
     * owning allocator is gone and no revocation epoch is open).
     * A page that comes back via getOrCreate() is a fresh zero page,
     * indistinguishable from one never touched.
     * @return pages released
     */
    size_t releaseRange(uint64_t vpn_lo, uint64_t vpn_hi);

    /** Pages materialised so far. */
    size_t
    resident() const
    {
        return resident_.load(std::memory_order_relaxed);
    }

  private:
    struct Leaf
    {
        std::array<std::atomic<Page *>, kLeafEntries> slots{};
    };

    std::unique_ptr<std::atomic<Leaf *>[]> root_;
    std::array<std::mutex, kStripes> stripes_;
    std::mutex leaves_mu_;
    std::vector<Leaf *> leaves_; //!< for O(resident) destruction
    std::atomic<size_t> resident_{0};
};

/**
 * The simulated tagged virtual memory. Pages materialise lazily on
 * first write; reads of untouched mapped pages observe zeros.
 */
class TaggedMemory
{
  public:
    TaggedMemory() = default;

    // Not copyable: pages can be large and identity matters.
    TaggedMemory(const TaggedMemory &) = delete;
    TaggedMemory &operator=(const TaggedMemory &) = delete;

    PageTable &pageTable() { return pt_; }
    const PageTable &pageTable() const { return pt_; }

    /** @name Raw (TCB) access — no capability checks */
    /// @{
    void writeBytes(uint64_t addr, const void *src, uint64_t size);
    void readBytes(uint64_t addr, void *dst, uint64_t size) const;

    /**
     * Counter-free read for the sweeper's inner loop: no page-table
     * checks, no statistics, safe to call concurrently from several
     * sweep threads (pages are read-shared; tag clears are confined
     * to each thread's page partition).
     */
    void peekBytes(uint64_t addr, void *dst, uint64_t size) const;
    void writeU64(uint64_t addr, uint64_t value);
    uint64_t readU64(uint64_t addr) const;
    /** memset-style fill; clears covered tags like any data write. */
    void fill(uint64_t addr, uint8_t byte, uint64_t size);
    /// @}

    /** @name Raw host-span (TCB metadata) path */
    /// @{

    /**
     * Host window onto the page containing @p addr, materialising it
     * if needed — the allocator hot path's per-chunk page resolution.
     * O(1): two acquire loads when the page exists.
     */
    HostSpan
    hostSpan(uint64_t addr)
    {
        const uint64_t base = addr & ~(kPageBytes - 1);
        return HostSpan(&dir_.getOrCreate(addr >> kPageShift), base);
    }

    /**
     * Raw counter-free u64 load for allocator metadata that falls
     * outside a cached span (e.g.\ a boundary-tag footer on the next
     * page). Never materialises: untouched pages read as zero.
     */
    uint64_t
    spanReadU64(uint64_t addr) const
    {
        const Page *page = pageIfPresent(addr);
        if (!page)
            return 0;
        uint64_t value;
        std::memcpy(&value,
                    page->data.data() + (addr & (kPageBytes - 1)), 8);
        return value;
    }

    /** Raw counter-free u64 store with HostSpan::writeU64's
     *  tag-invalidation semantics, for out-of-span metadata. */
    void
    spanWriteU64(uint64_t addr, uint64_t value)
    {
        hostSpan(addr).writeU64(addr, value);
    }

    /**
     * Test hook: panic unless the raw span path and the checked path
     * agree about [addr, addr+size) — same bytes, and no surviving
     * capability tag on any granule a raw store overwrote.
     */
    void assertSpanSemantics(uint64_t addr, uint64_t size) const;
    /// @}

    /** @name Raw shadow-store path (thread-safe) */
    /// @{

    /**
     * Byte-fill for the revocation shadow region: no page-table
     * checks, no capability-tag clearing (shadow bytes never carry
     * tags), and no shared counters — the per-shard
     * alloc::PaintStats are the accounting, so there is nothing to
     * race on. Pages materialise under the directory's striped
     * locks, and painter shards partition the granule space so no
     * two threads ever fill the same byte: safe to call from several
     * painting threads concurrently.
     */
    void shadowFill(uint64_t addr, uint8_t byte, uint64_t size);

    /**
     * Atomically OR @p mask into (set) or AND it out of (clear) the
     * shadow byte at @p addr. This is the partial-byte
     * read-modify-write of a paint head/tail; adjacent shards may
     * share the byte, so the RMW must be atomic for threaded
     * painting to produce byte-identical shadow contents.
     */
    void shadowApplyBits(uint64_t addr, uint8_t mask, bool set);

    /** Lock-free single-byte read (zero when the page was never
     *  written); the §3.3 shadow-lookup fast path. */
    uint8_t
    peekU8(uint64_t addr) const
    {
        const Page *page = pageIfPresent(addr);
        return page ? page->data[addr & (kPageBytes - 1)] : 0;
    }
    /// @}

    /** @name Capability-width (tag-carrying) access */
    /// @{

    /** Store a capability word (16-byte aligned). Sets/clears the tag
     *  to match cap.tag(); a tagged store marks the PTE CapDirty and
     *  counts a trap on the clean→dirty transition. */
    void writeCap(uint64_t addr, const cap::Capability &capability);

    /** Load the 16-byte word at @p addr as a capability + its tag. */
    cap::Capability readCap(uint64_t addr) const;

    /** The tag of the granule containing @p addr. */
    bool readTag(uint64_t addr) const;

    /** Revoke: clear the tag of the granule at @p addr (16B aligned).
     *  Data is left intact, matching tag-clearing semantics. */
    void clearTagAt(uint64_t addr);

    /**
     * Copy [src, src+size) to dst preserving capability tags, the way
     * a CHERI memcpy compiled to capability loads/stores would.
     * Ranges must not overlap; both addresses 16-byte aligned.
     */
    void copyPreservingTags(uint64_t dst, uint64_t src, uint64_t size);
    /// @}

    /** @name Capability-store listeners (tier tracking) */
    /// @{

    /**
     * Observe every *tagged* capability store whose address falls in
     * [lo, hi) — the hook the adaptive policy's generation-tier map
     * uses to track which pages recently received capabilities, so a
     * tier-scoped sweep can skip pages that cannot hold a pointer to
     * a young chunk. Untagged (tag-clearing) stores are not
     * reported: they cannot create a dangling capability.
     *
     * Listeners fire on the storing thread with no synchronisation;
     * register/remove only at quiet points (no stores in flight).
     * @return an id for removeCapStoreListener
     */
    uint64_t addCapStoreListener(uint64_t lo, uint64_t hi,
                                 std::function<void(uint64_t)> fn);

    /** Remove a listener by the id addCapStoreListener returned. */
    void removeCapStoreListener(uint64_t id);
    /// @}

    /** @name Checked (CheriABI) access through a capability */
    /// @{
    uint64_t loadU64(const cap::Capability &auth, uint64_t addr) const;
    void storeU64(const cap::Capability &auth, uint64_t addr,
                  uint64_t value);
    cap::Capability loadCap(const cap::Capability &auth,
                            uint64_t addr) const;
    void storeCap(const cap::Capability &auth, uint64_t addr,
                  const cap::Capability &value);
    /// @}

    /** @name Revocation load barrier (Cornucopia-style) */
    /// @{

    /**
     * Install a load-side revocation check: while active, any
     * capability load whose base the predicate reports as revoked
     * has its tag stripped — in the loaded value *and* in place.
     * This is the barrier that makes revocation sound while a sweep
     * runs concurrently with the program (§3.5): a dangling
     * capability copied out of a not-yet-swept region is caught at
     * the load. CHERIvoke's successor (Cornucopia) deploys exactly
     * this check in hardware.
     */
    void installLoadBarrier(std::function<bool(uint64_t)> is_revoked);

    /** Remove the barrier (the epoch's sweep has completed). */
    void removeLoadBarrier();

    bool loadBarrierActive() const
    {
        return static_cast<bool>(load_barrier_);
    }
    /// @}

    /** @name Sweep support */
    /// @{
    /** 4-bit mask of capability tags in the 64-byte line (CLoadTags). */
    uint8_t lineTagMask(uint64_t line_addr) const;

    /** True if the page containing @p addr holds any tagged granule. */
    bool pageHasTags(uint64_t addr) const;

    /** Tag population of the page containing @p addr. */
    uint32_t pageTagCount(uint64_t addr) const;

    /** Direct page lookup for the sweeper's inner loop: O(1) and
     *  lock-free through the page directory; nullptr when the page
     *  was never written. */
    const Page *
    pageIfPresent(uint64_t addr) const
    {
        return dir_.lookup(addr >> kPageShift);
    }
    Page *
    pageIfPresentMutable(uint64_t addr)
    {
        return dir_.lookup(addr >> kPageShift);
    }
    /// @}

    /**
     * Tenant-teardown bulk release: deallocate the backing pages of
     * [base, base+size) (page-aligned), wiping the range's data,
     * tags and residency in one pass, so a later occupant observes
     * exactly what a never-touched range shows — zero data, zero
     * tags, not resident. Note: the range's *shadow bytes* live at
     * shadowAddrOf(base), outside the range; a teardown that must
     * also clear them issues a second releaseRange over the shadow
     * window (see tenant::TenantManager's slot teardown). Requires
     * the same quiescence as PageDirectory::releaseRange.
     * @return pages released
     */
    size_t releaseRange(uint64_t base, uint64_t size);

    /** Pages that have been materialised (touched by a write). */
    size_t residentPages() const { return dir_.resident(); }

    /** @name Soft page budget (memory-pressure modelling) */
    /// @{

    /**
     * Install a soft budget on resident pages (0 = unlimited, the
     * default). The budget is advisory: nothing here ever fails an
     * allocation — a host (tenant::TenantManager) polls
     * overSoftBudget() and walks its escalation ladder (emergency
     * revocation → cold-page reclaim → tenant OOM-kill) to get back
     * under it.
     */
    void setSoftPageBudget(size_t pages) { soft_budget_ = pages; }
    size_t softPageBudget() const { return soft_budget_; }
    bool
    overSoftBudget() const
    {
        return soft_budget_ != 0 && dir_.resident() > soft_budget_;
    }
    /// @}

    stats::CounterGroup &counters() { return counters_; }
    const stats::CounterGroup &counters() const { return counters_; }

  private:
    Page &pageForWrite(uint64_t addr);
    void checkMapped(uint64_t addr, uint64_t size, bool write) const;
    void checkAccess(const cap::Capability &auth, uint64_t addr,
                     uint64_t size, uint16_t perm_needed) const;
    /** Clear tags of all granules overlapping [addr, addr+size). */
    void clearTagsInRange(uint64_t addr, uint64_t size);

    struct CapStoreListener
    {
        uint64_t id = 0;
        uint64_t lo = 0;
        uint64_t hi = 0;
        std::function<void(uint64_t)> fn;
    };

    PageDirectory dir_;
    PageTable pt_;
    std::vector<CapStoreListener> cap_store_listeners_;
    uint64_t next_listener_id_ = 1;
    size_t soft_budget_ = 0; //!< resident-page soft cap; 0 = none
    /** mutable: read paths account traffic too. */
    mutable stats::CounterGroup counters_;
    std::function<bool(uint64_t)> load_barrier_;
};

} // namespace mem
} // namespace cherivoke

#endif // CHERIVOKE_MEM_TAGGED_MEMORY_HH

/**
 * @file
 * Tagged memory: the simulated virtual address space with one validity
 * tag per 16-byte granule (paper §2.2).
 *
 * The tag is the architectural feature CHERIvoke is built on: it
 * distinguishes capability words from data with neither false
 * positives nor false negatives. Non-capability writes clear the tags
 * of every granule they touch; capability stores set exactly one tag
 * and mark the page's PTE CapDirty.
 *
 * Checked accessors take an authorising capability and enforce the
 * CheriABI rules (tag, bounds, permissions); raw accessors exist for
 * the trusted computing base (the allocator and the revoker).
 */

#ifndef CHERIVOKE_MEM_TAGGED_MEMORY_HH
#define CHERIVOKE_MEM_TAGGED_MEMORY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "cap/capability.hh"
#include "mem/page_table.hh"
#include "stats/counters.hh"
#include "support/units.hh"

namespace cherivoke {
namespace mem {

/** Backing store for one simulated page: data plus granule tags. */
struct Page
{
    alignas(16) std::array<uint8_t, kPageBytes> data{};
    /** One bit per 16-byte granule: 256 bits. */
    std::array<uint64_t, kGranulesPerPage / 64> tags{};
    /** Cached population count of tags, for cheap page-level queries. */
    uint32_t tagCount = 0;

    bool granuleTag(unsigned g) const
    {
        return (tags[g >> 6] >> (g & 63)) & 1;
    }
    void setGranuleTag(unsigned g);
    void clearGranuleTag(unsigned g);
};

/**
 * The simulated tagged virtual memory. Pages materialise lazily on
 * first write; reads of untouched mapped pages observe zeros.
 */
class TaggedMemory
{
  public:
    TaggedMemory() = default;

    // Not copyable: pages can be large and identity matters.
    TaggedMemory(const TaggedMemory &) = delete;
    TaggedMemory &operator=(const TaggedMemory &) = delete;

    PageTable &pageTable() { return pt_; }
    const PageTable &pageTable() const { return pt_; }

    /** @name Raw (TCB) access — no capability checks */
    /// @{
    void writeBytes(uint64_t addr, const void *src, uint64_t size);
    void readBytes(uint64_t addr, void *dst, uint64_t size) const;

    /**
     * Counter-free read for the sweeper's inner loop: no page-table
     * checks, no statistics, safe to call concurrently from several
     * sweep threads (pages are read-shared; tag clears are confined
     * to each thread's page partition).
     */
    void peekBytes(uint64_t addr, void *dst, uint64_t size) const;
    void writeU64(uint64_t addr, uint64_t value);
    uint64_t readU64(uint64_t addr) const;
    /** memset-style fill; clears covered tags like any data write. */
    void fill(uint64_t addr, uint8_t byte, uint64_t size);

    /** Store a capability word (16-byte aligned). Sets/clears the tag
     *  to match cap.tag(); a tagged store marks the PTE CapDirty and
     *  counts a trap on the clean→dirty transition. */
    void writeCap(uint64_t addr, const cap::Capability &capability);

    /** Load the 16-byte word at @p addr as a capability + its tag. */
    cap::Capability readCap(uint64_t addr) const;

    /** The tag of the granule containing @p addr. */
    bool readTag(uint64_t addr) const;

    /** Revoke: clear the tag of the granule at @p addr (16B aligned).
     *  Data is left intact, matching tag-clearing semantics. */
    void clearTagAt(uint64_t addr);

    /**
     * Copy [src, src+size) to dst preserving capability tags, the way
     * a CHERI memcpy compiled to capability loads/stores would.
     * Ranges must not overlap; both addresses 16-byte aligned.
     */
    void copyPreservingTags(uint64_t dst, uint64_t src, uint64_t size);
    /// @}

    /** @name Checked (CheriABI) access through a capability */
    /// @{
    uint64_t loadU64(const cap::Capability &auth, uint64_t addr) const;
    void storeU64(const cap::Capability &auth, uint64_t addr,
                  uint64_t value);
    cap::Capability loadCap(const cap::Capability &auth,
                            uint64_t addr) const;
    void storeCap(const cap::Capability &auth, uint64_t addr,
                  const cap::Capability &value);
    /// @}

    /** @name Revocation load barrier (Cornucopia-style) */
    /// @{

    /**
     * Install a load-side revocation check: while active, any
     * capability load whose base the predicate reports as revoked
     * has its tag stripped — in the loaded value *and* in place.
     * This is the barrier that makes revocation sound while a sweep
     * runs concurrently with the program (§3.5): a dangling
     * capability copied out of a not-yet-swept region is caught at
     * the load. CHERIvoke's successor (Cornucopia) deploys exactly
     * this check in hardware.
     */
    void installLoadBarrier(std::function<bool(uint64_t)> is_revoked);

    /** Remove the barrier (the epoch's sweep has completed). */
    void removeLoadBarrier();

    bool loadBarrierActive() const
    {
        return static_cast<bool>(load_barrier_);
    }
    /// @}

    /** @name Sweep support */
    /// @{
    /** 4-bit mask of capability tags in the 64-byte line (CLoadTags). */
    uint8_t lineTagMask(uint64_t line_addr) const;

    /** True if the page containing @p addr holds any tagged granule. */
    bool pageHasTags(uint64_t addr) const;

    /** Tag population of the page containing @p addr. */
    uint32_t pageTagCount(uint64_t addr) const;

    /** Direct page lookup for the sweeper's inner loop;
     *  nullptr when the page was never written. */
    const Page *pageIfPresent(uint64_t addr) const;
    Page *pageIfPresentMutable(uint64_t addr);
    /// @}

    /** Pages that have been materialised (touched by a write). */
    size_t residentPages() const { return pages_.size(); }

    stats::CounterGroup &counters() { return counters_; }
    const stats::CounterGroup &counters() const { return counters_; }

  private:
    Page &pageForWrite(uint64_t addr);
    void checkMapped(uint64_t addr, uint64_t size, bool write) const;
    void checkAccess(const cap::Capability &auth, uint64_t addr,
                     uint64_t size, uint16_t perm_needed) const;
    /** Clear tags of all granules overlapping [addr, addr+size). */
    void clearTagsInRange(uint64_t addr, uint64_t size);

    std::map<uint64_t, std::unique_ptr<Page>> pages_; //!< by vpn
    PageTable pt_;
    /** mutable: read paths account traffic too. */
    mutable stats::CounterGroup counters_;
    std::function<bool(uint64_t)> load_barrier_;
};

} // namespace mem
} // namespace cherivoke

#endif // CHERIVOKE_MEM_TAGGED_MEMORY_HH

#include "mem/addr_space.hh"

#include <algorithm>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace mem {

AddressSpace::Layout
AddressSpace::Layout::shifted(uint64_t offset) const
{
    return Layout{globalsBase + offset, heapBase + offset,
                  stackBase + offset};
}

AddressSpace::AddressSpace(uint64_t globals_size, uint64_t stack_size)
    : owned_(std::make_unique<TaggedMemory>()), mem_(owned_.get()),
      root_(cap::Capability::root())
{
    layOut(globals_size, stack_size);
}

AddressSpace::AddressSpace(TaggedMemory &memory, const Layout &layout,
                           uint64_t globals_size, uint64_t stack_size)
    : mem_(&memory), layout_(layout), root_(cap::Capability::root())
{
    layOut(globals_size, stack_size);
}

void
AddressSpace::layOut(uint64_t globals_size, uint64_t stack_size)
{
    CHERIVOKE_ASSERT(layout_.globalsBase < layout_.heapBase &&
                         layout_.heapBase < layout_.stackBase,
                     "(layout segments out of order)");
    CHERIVOKE_ASSERT(layout_.stackBase + stack_size <= kShadowBase,
                     "(process image overlaps the shadow region)");
    heap_brk_ = layout_.heapBase;
    globals_ = Segment{"globals", layout_.globalsBase,
                       alignUp(globals_size, kPageBytes)};
    stack_ = Segment{"stack", layout_.stackBase,
                     alignUp(stack_size, kPageBytes)};
    CHERIVOKE_ASSERT(globals_.end() <= layout_.heapBase,
                     "(globals segment overlaps the heap)");
    mem_->pageTable().map(globals_.base, globals_.size,
                          ProtRead | ProtWrite);
    mem_->pageTable().map(stack_.base, stack_.size,
                          ProtRead | ProtWrite);
    mapShadowFor(globals_.base, globals_.size);
    mapShadowFor(stack_.base, stack_.size);
}

void
AddressSpace::mapShadowFor(uint64_t base, uint64_t size)
{
    // 1 shadow byte covers 128 bytes (8 granules); round outward to
    // whole shadow pages. Overlapping re-maps are harmless.
    const uint64_t shadow_lo = alignDown(shadowAddrOf(base), kPageBytes);
    const uint64_t shadow_hi =
        alignUp(shadowAddrOf(base + size), kPageBytes);
    mem_->pageTable().map(shadow_lo, shadow_hi - shadow_lo,
                          ProtRead | ProtWrite);
}

uint64_t
AddressSpace::mmapHeap(uint64_t size)
{
    CHERIVOKE_ASSERT(size > 0);
    const uint64_t mapped = alignUp(size, kPageBytes);
    const uint64_t base = heap_brk_;
    CHERIVOKE_ASSERT(base + mapped <= layout_.stackBase,
                     "(heap collided with stack segment)");
    mem_->pageTable().map(base, mapped, ProtRead | ProtWrite);
    mapShadowFor(base, mapped);
    heap_.push_back(Segment{"heap", base, mapped});
    heap_brk_ += mapped;
    return base;
}

void
AddressSpace::munmapHeap(uint64_t base, uint64_t size)
{
    const uint64_t mapped = alignUp(size, kPageBytes);
    auto it = std::find_if(heap_.begin(), heap_.end(),
                           [&](const Segment &s) {
                               return s.base == base && s.size == mapped;
                           });
    CHERIVOKE_ASSERT(it != heap_.end(),
                     "(munmapHeap of unknown region)");
    mem_->pageTable().unmap(base, mapped);
    // Unmap the shadow only where no other heap region still needs it
    // (regions are page-aligned and disjoint, and one shadow page
    // covers 512 KiB of heap, so simply leave boundary pages mapped).
    const uint64_t shadow_lo = alignUp(shadowAddrOf(base), kPageBytes);
    const uint64_t shadow_hi =
        alignDown(shadowAddrOf(base + mapped), kPageBytes);
    if (shadow_hi > shadow_lo)
        mem_->pageTable().unmap(shadow_lo, shadow_hi - shadow_lo);
    heap_.erase(it);
}

std::vector<Segment>
AddressSpace::sweepableSegments() const
{
    std::vector<Segment> segs;
    segs.push_back(globals_);
    segs.push_back(stack_);
    for (const auto &h : heap_)
        segs.push_back(h);
    return segs;
}

uint64_t
AddressSpace::heapMappedBytes() const
{
    uint64_t total = 0;
    for (const auto &h : heap_)
        total += h.size;
    return total;
}

} // namespace mem
} // namespace cherivoke

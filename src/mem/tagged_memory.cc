#include "mem/tagged_memory.hh"

#include <cstring>
#include <vector>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace mem {

using cap::CapFault;
using cap::FaultKind;

void
Page::setGranuleTag(unsigned g)
{
    uint64_t &word = tags[g >> 6];
    const uint64_t bit = uint64_t{1} << (g & 63);
    if (!(word & bit)) {
        word |= bit;
        ++tagCount;
    }
}

void
Page::clearGranuleTag(unsigned g)
{
    uint64_t &word = tags[g >> 6];
    const uint64_t bit = uint64_t{1} << (g & 63);
    if (word & bit) {
        word &= ~bit;
        --tagCount;
    }
}

PageDirectory::PageDirectory()
    : root_(new std::atomic<Leaf *>[kRootEntries]())
{}

PageDirectory::~PageDirectory()
{
    for (Leaf *leaf : leaves_) {
        for (auto &slot : leaf->slots)
            delete slot.load(std::memory_order_relaxed);
        delete leaf;
    }
}

Page &
PageDirectory::getOrCreate(uint64_t vpn)
{
    if (vpn >= kMaxVpn) {
        fatal("address 0x%llx beyond the %u-bit simulated VA space",
              static_cast<unsigned long long>(vpn << kPageShift),
              kVaBits);
    }
    std::atomic<Leaf *> &rslot = root_[vpn >> kLeafBits];
    Leaf *leaf = rslot.load(std::memory_order_acquire);
    if (!leaf) {
        std::lock_guard<std::mutex> lock(
            stripes_[(vpn >> kLeafBits) % kStripes]);
        leaf = rslot.load(std::memory_order_acquire);
        if (!leaf) {
            leaf = new Leaf();
            {
                std::lock_guard<std::mutex> reg(leaves_mu_);
                leaves_.push_back(leaf);
            }
            rslot.store(leaf, std::memory_order_release);
        }
    }
    std::atomic<Page *> &slot = leaf->slots[vpn & (kLeafEntries - 1)];
    Page *page = slot.load(std::memory_order_acquire);
    if (!page) {
        std::lock_guard<std::mutex> lock(stripes_[vpn % kStripes]);
        page = slot.load(std::memory_order_acquire);
        if (!page) {
            page = new Page();
            resident_.fetch_add(1, std::memory_order_relaxed);
            slot.store(page, std::memory_order_release);
        }
    }
    return *page;
}

size_t
PageDirectory::releaseRange(uint64_t vpn_lo, uint64_t vpn_hi)
{
    vpn_hi = std::min(vpn_hi, kMaxVpn);
    size_t released = 0;
    uint64_t vpn = vpn_lo;
    while (vpn < vpn_hi) {
        Leaf *leaf =
            root_[vpn >> kLeafBits].load(std::memory_order_acquire);
        // Whole-leaf skip: an unmaterialised leaf spans 1 GiB.
        const uint64_t leaf_end =
            ((vpn >> kLeafBits) + 1) << kLeafBits;
        const uint64_t end = std::min<uint64_t>(vpn_hi, leaf_end);
        if (!leaf) {
            vpn = end;
            continue;
        }
        for (; vpn < end; ++vpn) {
            std::atomic<Page *> &slot =
                leaf->slots[vpn & (kLeafEntries - 1)];
            Page *page = slot.load(std::memory_order_acquire);
            if (!page)
                continue;
            slot.store(nullptr, std::memory_order_release);
            delete page;
            ++released;
        }
    }
    resident_.fetch_sub(released, std::memory_order_relaxed);
    return released;
}

size_t
TaggedMemory::releaseRange(uint64_t base, uint64_t size)
{
    CHERIVOKE_ASSERT(isAligned(base, kPageBytes) &&
                     isAligned(size, kPageBytes),
                     "(releaseRange must be page aligned)");
    return dir_.releaseRange(base >> kPageShift,
                             (base + size) >> kPageShift);
}

Page &
TaggedMemory::pageForWrite(uint64_t addr)
{
    return dir_.getOrCreate(addr >> kPageShift);
}

void
TaggedMemory::checkMapped(uint64_t addr, uint64_t size, bool write) const
{
    const uint64_t first = addr >> kPageShift;
    const uint64_t last = (addr + size - 1) >> kPageShift;
    for (uint64_t vpn = first; vpn <= last; ++vpn) {
        const Pte *pte = pt_.lookup(vpn << kPageShift);
        if (!pte) {
            throw CapFault(FaultKind::Bounds,
                           "access to unmapped address");
        }
        const uint8_t need = write ? ProtWrite : ProtRead;
        if (!(pte->prot & need)) {
            throw CapFault(FaultKind::Permission,
                           "page protection violation");
        }
    }
}

void
TaggedMemory::clearTagsInRange(uint64_t addr, uint64_t size)
{
    if (size == 0)
        return;
    uint64_t g_first = addr >> kGranuleShift;
    const uint64_t g_last = (addr + size - 1) >> kGranuleShift;
    for (uint64_t g = g_first; g <= g_last; ++g) {
        const uint64_t g_addr = g << kGranuleShift;
        Page *page = pageIfPresentMutable(g_addr);
        if (!page)
            continue;
        const unsigned idx =
            static_cast<unsigned>((g_addr & (kPageBytes - 1)) >>
                                  kGranuleShift);
        if (page->granuleTag(idx)) {
            page->clearGranuleTag(idx);
            counters_.counter("mem.tags_cleared_by_overwrite")
                .increment();
        }
    }
}

void
TaggedMemory::writeBytes(uint64_t addr, const void *src, uint64_t size)
{
    if (size == 0)
        return;
    checkMapped(addr, size, true);
    clearTagsInRange(addr, size);
    counters_.counter("mem.data_write_bytes").increment(size);
    const uint8_t *p = static_cast<const uint8_t *>(src);
    uint64_t remaining = size;
    uint64_t cur = addr;
    while (remaining > 0) {
        Page &page = pageForWrite(cur);
        const uint64_t off = cur & (kPageBytes - 1);
        const uint64_t chunk = std::min(remaining, kPageBytes - off);
        std::memcpy(page.data.data() + off, p, chunk);
        p += chunk;
        cur += chunk;
        remaining -= chunk;
    }
}

void
TaggedMemory::readBytes(uint64_t addr, void *dst, uint64_t size) const
{
    if (size == 0)
        return;
    checkMapped(addr, size, false);
    counters_
        .counter("mem.data_read_bytes")
        .increment(size);
    uint8_t *p = static_cast<uint8_t *>(dst);
    uint64_t remaining = size;
    uint64_t cur = addr;
    while (remaining > 0) {
        const uint64_t off = cur & (kPageBytes - 1);
        const uint64_t chunk = std::min(remaining, kPageBytes - off);
        const Page *page = pageIfPresent(cur);
        if (page) {
            std::memcpy(p, page->data.data() + off, chunk);
        } else {
            std::memset(p, 0, chunk);
        }
        p += chunk;
        cur += chunk;
        remaining -= chunk;
    }
}

void
TaggedMemory::peekBytes(uint64_t addr, void *dst, uint64_t size) const
{
    uint8_t *p = static_cast<uint8_t *>(dst);
    uint64_t remaining = size;
    uint64_t cur = addr;
    while (remaining > 0) {
        const uint64_t off = cur & (kPageBytes - 1);
        const uint64_t chunk = std::min(remaining, kPageBytes - off);
        const Page *page = pageIfPresent(cur);
        if (page) {
            std::memcpy(p, page->data.data() + off, chunk);
        } else {
            std::memset(p, 0, chunk);
        }
        p += chunk;
        cur += chunk;
        remaining -= chunk;
    }
}

void
TaggedMemory::writeU64(uint64_t addr, uint64_t value)
{
    writeBytes(addr, &value, sizeof(value));
}

uint64_t
TaggedMemory::readU64(uint64_t addr) const
{
    uint64_t value = 0;
    readBytes(addr, &value, sizeof(value));
    return value;
}

void
TaggedMemory::fill(uint64_t addr, uint8_t byte, uint64_t size)
{
    if (size == 0)
        return;
    checkMapped(addr, size, true);
    clearTagsInRange(addr, size);
    counters_.counter("mem.data_write_bytes").increment(size);
    uint64_t remaining = size;
    uint64_t cur = addr;
    while (remaining > 0) {
        Page &page = pageForWrite(cur);
        const uint64_t off = cur & (kPageBytes - 1);
        const uint64_t chunk = std::min(remaining, kPageBytes - off);
        std::memset(page.data.data() + off, byte, chunk);
        cur += chunk;
        remaining -= chunk;
    }
}

void
TaggedMemory::writeCap(uint64_t addr, const cap::Capability &capability)
{
    if (!isAligned(addr, kCapBytes)) {
        throw CapFault(FaultKind::Alignment,
                       "capability store must be 16-byte aligned");
    }
    checkMapped(addr, kCapBytes, true);
    const Pte *pte = pt_.lookup(addr);
    if (capability.tag() && pte->capStoreInhibit) {
        throw CapFault(FaultKind::CapStoreInhibit,
                       "tagged store to capability-store-inhibited page");
    }

    Page &page = pageForWrite(addr);
    const uint64_t off = addr & (kPageBytes - 1);
    const uint64_t lo = capability.packLow();
    const uint64_t hi = capability.packHigh();
    std::memcpy(page.data.data() + off, &lo, 8);
    std::memcpy(page.data.data() + off + 8, &hi, 8);

    const unsigned g = static_cast<unsigned>(off >> kGranuleShift);
    if (capability.tag()) {
        page.setGranuleTag(g);
        counters_.counter("mem.cap_writes").increment();
        if (pt_.setCapDirty(addr))
            counters_.counter("mem.capdirty_traps").increment();
        for (const CapStoreListener &l : cap_store_listeners_) {
            if (addr >= l.lo && addr < l.hi)
                l.fn(addr);
        }
    } else {
        page.clearGranuleTag(g);
        counters_.counter("mem.untagged_cap_writes").increment();
    }
}

cap::Capability
TaggedMemory::readCap(uint64_t addr) const
{
    if (!isAligned(addr, kCapBytes)) {
        throw CapFault(FaultKind::Alignment,
                       "capability load must be 16-byte aligned");
    }
    checkMapped(addr, kCapBytes, false);
    counters_.counter("mem.cap_reads").increment();
    const Page *page = pageIfPresent(addr);
    if (!page)
        return cap::Capability{};
    const uint64_t off = addr & (kPageBytes - 1);
    uint64_t lo, hi;
    std::memcpy(&lo, page->data.data() + off, 8);
    std::memcpy(&hi, page->data.data() + off + 8, 8);
    bool tag =
        page->granuleTag(static_cast<unsigned>(off >> kGranuleShift));

    // Load-side revocation barrier: a tagged load whose base is
    // marked in the shadow map is stripped here — in the result and
    // in place (the hardware clears the tag in the cache line; the
    // const_cast models that write-on-load).
    if (tag && load_barrier_ &&
        load_barrier_(cap::Capability::decodeBase(lo, hi))) {
        tag = false;
        const_cast<TaggedMemory *>(this)->clearTagAt(addr);
        counters_.counter("mem.load_barrier_strips").increment();
    }
    return cap::Capability::unpack(lo, hi, tag);
}

uint64_t
TaggedMemory::addCapStoreListener(uint64_t lo, uint64_t hi,
                                  std::function<void(uint64_t)> fn)
{
    const uint64_t id = next_listener_id_++;
    cap_store_listeners_.push_back(
        CapStoreListener{id, lo, hi, std::move(fn)});
    return id;
}

void
TaggedMemory::removeCapStoreListener(uint64_t id)
{
    for (size_t i = 0; i < cap_store_listeners_.size(); ++i) {
        if (cap_store_listeners_[i].id == id) {
            cap_store_listeners_.erase(cap_store_listeners_.begin() +
                                       static_cast<long>(i));
            return;
        }
    }
    CHERIVOKE_ASSERT(false, "(unknown cap-store listener id)");
}

void
TaggedMemory::installLoadBarrier(
    std::function<bool(uint64_t)> is_revoked)
{
    load_barrier_ = std::move(is_revoked);
}

void
TaggedMemory::removeLoadBarrier()
{
    load_barrier_ = nullptr;
}

bool
TaggedMemory::readTag(uint64_t addr) const
{
    const Page *page = pageIfPresent(addr);
    if (!page)
        return false;
    const uint64_t off = addr & (kPageBytes - 1);
    return page->granuleTag(static_cast<unsigned>(off >> kGranuleShift));
}

void
TaggedMemory::clearTagAt(uint64_t addr)
{
    CHERIVOKE_ASSERT(isAligned(addr, kGranuleBytes));
    Page *page = pageIfPresentMutable(addr);
    if (!page)
        return;
    const uint64_t off = addr & (kPageBytes - 1);
    page->clearGranuleTag(static_cast<unsigned>(off >> kGranuleShift));
}

void
TaggedMemory::copyPreservingTags(uint64_t dst, uint64_t src,
                                 uint64_t size)
{
    CHERIVOKE_ASSERT(isAligned(dst, kCapBytes) &&
                     isAligned(src, kCapBytes),
                     "(tag-preserving copy must be 16B aligned)");
    CHERIVOKE_ASSERT(dst + size <= src || src + size <= dst,
                     "(tag-preserving copy ranges overlap)");
    uint64_t off = 0;
    // Whole granules: capability-width copies carry the tag.
    for (; off + kCapBytes <= size; off += kCapBytes) {
        if (readTag(src + off)) {
            writeCap(dst + off, readCap(src + off));
        } else {
            uint8_t buf[kCapBytes];
            readBytes(src + off, buf, kCapBytes);
            writeBytes(dst + off, buf, kCapBytes);
        }
    }
    // Trailing partial granule: plain data.
    if (off < size) {
        std::vector<uint8_t> buf(size - off);
        readBytes(src + off, buf.data(), buf.size());
        writeBytes(dst + off, buf.data(), buf.size());
    }
}

uint64_t
TaggedMemory::loadU64(const cap::Capability &auth, uint64_t addr) const
{
    checkAccess(auth, addr, 8, cap::PermLoad);
    return readU64(addr);
}

void
TaggedMemory::storeU64(const cap::Capability &auth, uint64_t addr,
                       uint64_t value)
{
    checkAccess(auth, addr, 8, cap::PermStore);
    writeU64(addr, value);
}

cap::Capability
TaggedMemory::loadCap(const cap::Capability &auth, uint64_t addr) const
{
    checkAccess(auth, addr, kCapBytes,
                cap::PermLoad | cap::PermLoadCap);
    return readCap(addr);
}

void
TaggedMemory::storeCap(const cap::Capability &auth, uint64_t addr,
                       const cap::Capability &value)
{
    checkAccess(auth, addr, kCapBytes,
                cap::PermStore | cap::PermStoreCap);
    writeCap(addr, value);
}

void
TaggedMemory::checkAccess(const cap::Capability &auth, uint64_t addr,
                          uint64_t size, uint16_t perm_needed) const
{
    if (!auth.tag()) {
        throw CapFault(FaultKind::Tag,
                       "dereference of untagged capability");
    }
    if (!auth.hasPerm(perm_needed)) {
        throw CapFault(FaultKind::Permission,
                       "capability lacks required permission");
    }
    if (!auth.inBounds(addr, size)) {
        throw CapFault(FaultKind::Bounds,
                       "access outside capability bounds");
    }
}

uint8_t
TaggedMemory::lineTagMask(uint64_t line_addr) const
{
    CHERIVOKE_ASSERT(isAligned(line_addr, kLineBytes));
    const Page *page = pageIfPresent(line_addr);
    if (!page)
        return 0;
    const uint64_t off = line_addr & (kPageBytes - 1);
    const unsigned g0 = static_cast<unsigned>(off >> kGranuleShift);
    uint8_t mask = 0;
    for (unsigned i = 0; i < kCapsPerLine; ++i) {
        if (page->granuleTag(g0 + i))
            mask |= static_cast<uint8_t>(1u << i);
    }
    return mask;
}

bool
TaggedMemory::pageHasTags(uint64_t addr) const
{
    const Page *page = pageIfPresent(addr);
    return page && page->tagCount > 0;
}

uint32_t
TaggedMemory::pageTagCount(uint64_t addr) const
{
    const Page *page = pageIfPresent(addr);
    return page ? page->tagCount : 0;
}

void
TaggedMemory::assertSpanSemantics(uint64_t addr, uint64_t size) const
{
    // Raw and checked reads must observe the same storage.
    for (uint64_t a = alignDown(addr, 8); a < addr + size; a += 8) {
        uint64_t checked = 0;
        peekBytes(a, &checked, 8);
        CHERIVOKE_ASSERT(spanReadU64(a) == checked,
                         "(raw span read diverged from checked read)");
    }
    // The caller vouches the range was last written through the raw
    // span path; those stores must have invalidated every tag.
    const uint64_t g_last = (addr + size - 1) >> kGranuleShift;
    for (uint64_t g = addr >> kGranuleShift; g <= g_last; ++g) {
        CHERIVOKE_ASSERT(!readTag(g << kGranuleShift),
                         "(raw span store left a capability tag "
                         "alive)");
    }
}

void
TaggedMemory::shadowFill(uint64_t addr, uint8_t byte, uint64_t size)
{
    uint64_t remaining = size;
    uint64_t cur = addr;
    while (remaining > 0) {
        Page &page = pageForWrite(cur);
        const uint64_t off = cur & (kPageBytes - 1);
        const uint64_t chunk = std::min(remaining, kPageBytes - off);
        std::memset(page.data.data() + off, byte, chunk);
        cur += chunk;
        remaining -= chunk;
    }
}

void
TaggedMemory::shadowApplyBits(uint64_t addr, uint8_t mask, bool set)
{
    Page &page = pageForWrite(addr);
    std::atomic_ref<uint8_t> byte(
        page.data[addr & (kPageBytes - 1)]);
    if (set) {
        byte.fetch_or(mask, std::memory_order_relaxed);
    } else {
        byte.fetch_and(static_cast<uint8_t>(~mask),
                       std::memory_order_relaxed);
    }
}

} // namespace mem
} // namespace cherivoke

#include "mem/page_table.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace mem {

void
PageTable::map(uint64_t base, uint64_t size, uint8_t prot,
               bool cap_store_inhibit)
{
    CHERIVOKE_ASSERT(isAligned(base, kPageBytes) &&
                     isAligned(size, kPageBytes),
                     "(map must be page aligned)");
    for (uint64_t vpn = base >> kPageShift;
         vpn < (base + size) >> kPageShift; ++vpn) {
        Pte &pte = ptes_[vpn];
        pte.prot = prot;
        pte.capStoreInhibit = cap_store_inhibit;
    }
}

void
PageTable::unmap(uint64_t base, uint64_t size)
{
    CHERIVOKE_ASSERT(isAligned(base, kPageBytes) &&
                     isAligned(size, kPageBytes),
                     "(unmap must be page aligned)");
    for (uint64_t vpn = base >> kPageShift;
         vpn < (base + size) >> kPageShift; ++vpn) {
        ptes_.erase(vpn);
    }
}

const Pte *
PageTable::lookup(uint64_t addr) const
{
    auto it = ptes_.find(addr >> kPageShift);
    return it == ptes_.end() ? nullptr : &it->second;
}

Pte *
PageTable::lookup(uint64_t addr)
{
    auto it = ptes_.find(addr >> kPageShift);
    return it == ptes_.end() ? nullptr : &it->second;
}

bool
PageTable::setCapDirty(uint64_t addr)
{
    Pte *pte = lookup(addr);
    CHERIVOKE_ASSERT(pte, "(setCapDirty on unmapped page)");
    if (pte->capDirty)
        return false;
    pte->capDirty = true;
    return true;
}

void
PageTable::clearCapDirty(uint64_t addr)
{
    Pte *pte = lookup(addr);
    CHERIVOKE_ASSERT(pte, "(clearCapDirty on unmapped page)");
    pte->capDirty = false;
}

std::vector<uint64_t>
PageTable::capDirtyPages() const
{
    std::vector<uint64_t> pages;
    for (const auto &[vpn, pte] : ptes_) {
        if (pte.capDirty)
            pages.push_back(vpn << kPageShift);
    }
    return pages;
}

std::vector<uint64_t>
PageTable::mappedPages() const
{
    std::vector<uint64_t> pages;
    pages.reserve(ptes_.size());
    for (const auto &[vpn, pte] : ptes_)
        pages.push_back(vpn << kPageShift);
    return pages;
}

size_t
PageTable::capDirtyCount() const
{
    size_t n = 0;
    for (const auto &[vpn, pte] : ptes_) {
        if (pte.capDirty)
            ++n;
    }
    return n;
}

} // namespace mem
} // namespace cherivoke

/**
 * @file
 * Page table with the CHERI PTE CapDirty flag (paper §3.4.2).
 *
 * CapDirty records whether a page has ever received a valid capability
 * store. Clean pages cannot contain capabilities and are skipped by
 * the revocation sweep. The first capability store to a clean page
 * "traps" (modelled as a counted event, since the OS handler's only
 * job is to set the flag), after which stores proceed silently.
 */

#ifndef CHERIVOKE_MEM_PAGE_TABLE_HH
#define CHERIVOKE_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "support/units.hh"

namespace cherivoke {
namespace mem {

/** Page protection bits. */
enum PageProt : uint8_t
{
    ProtRead  = 1u << 0,
    ProtWrite = 1u << 1,
    ProtExec  = 1u << 2,
};

/** A page-table entry. */
struct Pte
{
    uint8_t prot = 0;
    /** Set on the first tagged (capability) store to the page. */
    bool capDirty = false;
    /**
     * Capability-store inhibit (the CHERI-MIPS S bit, §3.4.2 fn 3):
     * tagged stores to this page fault. Used for shared/file pages.
     */
    bool capStoreInhibit = false;
};

/**
 * A single-level page table over the simulated virtual address space.
 * Ordered by virtual page number so sweeps are deterministic.
 */
class PageTable
{
  public:
    /** Map [base, base+size) with @p prot; both page-aligned. */
    void map(uint64_t base, uint64_t size, uint8_t prot,
             bool cap_store_inhibit = false);

    /** Unmap [base, base+size); both page-aligned. */
    void unmap(uint64_t base, uint64_t size);

    /** PTE pointer, or nullptr if unmapped. */
    const Pte *lookup(uint64_t addr) const;
    Pte *lookup(uint64_t addr);

    bool isMapped(uint64_t addr) const { return lookup(addr) != nullptr; }

    /** Number of mapped pages. */
    size_t pageCount() const { return ptes_.size(); }

    /**
     * Mark the page containing @p addr CapDirty.
     * @return true if this transition was a clean→dirty "trap".
     */
    bool setCapDirty(uint64_t addr);

    /** Clear CapDirty (a sweep found the page tag-free, §3.4.2). */
    void clearCapDirty(uint64_t addr);

    /**
     * The system API of §5.3: the page-aligned addresses of every
     * mapped page whose CapDirty flag is set, in address order.
     */
    std::vector<uint64_t> capDirtyPages() const;

    /** All mapped page base addresses, in address order. */
    std::vector<uint64_t> mappedPages() const;

    /** Count of CapDirty pages (fig. 8a numerator). */
    size_t capDirtyCount() const;

  private:
    std::map<uint64_t, Pte> ptes_; //!< keyed by virtual page number
};

} // namespace mem
} // namespace cherivoke

#endif // CHERIVOKE_MEM_PAGE_TABLE_HH

/**
 * @file
 * Named counter groups in the spirit of gem5's stats package, scaled
 * down to what the CHERIvoke experiments need: scalar counters that
 * modules bump during simulation and that benches read out by name.
 */

#ifndef CHERIVOKE_STATS_COUNTERS_HH
#define CHERIVOKE_STATS_COUNTERS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cherivoke {
namespace stats {

/** A single named 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    void increment(uint64_t by = 1) { value_ += by; }
    void set(uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    uint64_t value() const { return value_; }

    Counter &operator+=(uint64_t by) { value_ += by; return *this; }
    Counter &operator++() { ++value_; return *this; }

  private:
    uint64_t value_ = 0;
};

/**
 * An ordered collection of counters addressed by dotted names
 * ("dram.read_bytes"). Creation is lazy; iteration order is
 * insertion order so reports are stable.
 */
class CounterGroup
{
  public:
    /** Get (creating if absent) the counter with this name. */
    Counter &counter(const std::string &name);

    /** Read a counter's value; 0 if it was never created. */
    uint64_t value(const std::string &name) const;

    /** True if the named counter exists. */
    bool has(const std::string &name) const;

    /** Reset every counter to zero (counters stay registered). */
    void resetAll();

    /** Names in insertion order. */
    const std::vector<std::string> &names() const { return order_; }

    /** Render "name value" lines, one per counter. */
    std::string report() const;

  private:
    std::map<std::string, Counter> counters_;
    std::vector<std::string> order_;
};

} // namespace stats
} // namespace cherivoke

#endif // CHERIVOKE_STATS_COUNTERS_HH

#include "stats/summary.hh"

#include <cmath>

#include "support/logging.hh"

namespace cherivoke {
namespace stats {

void
Summary::add(double sample)
{
    if (count_ == 0) {
        min_ = max_ = sample;
    } else {
        if (sample < min_)
            min_ = sample;
        if (sample > max_)
            max_ = sample;
    }
    ++count_;
    total_ += sample;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
}

double
Summary::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
Summary::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
Summary::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
Summary::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0;
    for (double v : values) {
        CHERIVOKE_ASSERT(v > 0, "(geomean requires positive values)");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace stats
} // namespace cherivoke

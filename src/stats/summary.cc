#include "stats/summary.hh"

#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace cherivoke {
namespace stats {

void
Summary::add(double sample)
{
    if (count_ == 0) {
        min_ = max_ = sample;
    } else {
        if (sample < min_)
            min_ = sample;
        if (sample > max_)
            max_ = sample;
    }
    ++count_;
    total_ += sample;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
}

double
Summary::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
Summary::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
Summary::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
Summary::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
MutatorPathSummary::meanBinScanLength() const
{
    return binSearches == 0 ? 0.0
                            : static_cast<double>(binScanSteps) /
                                  static_cast<double>(binSearches);
}

double
MutatorPathSummary::rawSpanRate() const
{
    const uint64_t total = rawHeaderAccesses + slowHeaderAccesses;
    return total == 0 ? 0.0
                      : static_cast<double>(rawHeaderAccesses) /
                            static_cast<double>(total);
}

double
MutatorPathSummary::mergeRatio() const
{
    return quarantineFrees == 0
               ? 0.0
               : static_cast<double>(quarantineMerges) /
                     static_cast<double>(quarantineFrees);
}

std::string
MutatorPathSummary::render() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "mutator path: %llu mallocs, %llu quarantine frees\n"
        "  bin scan length   : %.3f nodes/search "
        "(%llu steps / %llu searches)\n"
        "  raw-span accesses : %.2f%% (%llu raw, %llu slow)\n"
        "  quarantine merges : %.3f per free (%llu merges)\n",
        static_cast<unsigned long long>(mallocCalls),
        static_cast<unsigned long long>(quarantineFrees),
        meanBinScanLength(),
        static_cast<unsigned long long>(binScanSteps),
        static_cast<unsigned long long>(binSearches),
        rawSpanRate() * 100.0,
        static_cast<unsigned long long>(rawHeaderAccesses),
        static_cast<unsigned long long>(slowHeaderAccesses),
        mergeRatio(),
        static_cast<unsigned long long>(quarantineMerges));
    return buf;
}

MutatorPathSummary
summarizeMutatorPath(const CounterGroup &alloc_counters)
{
    MutatorPathSummary s;
    s.mallocCalls = alloc_counters.value("alloc.malloc_calls");
    s.quarantineFrees =
        alloc_counters.value("alloc.quarantine_frees");
    s.binSearches = alloc_counters.value("alloc.bin_searches");
    s.binScanSteps = alloc_counters.value("alloc.bin_scan_steps");
    s.rawHeaderAccesses =
        alloc_counters.value("alloc.header_raw_accesses");
    s.slowHeaderAccesses =
        alloc_counters.value("alloc.header_slow_accesses");
    s.quarantineMerges =
        alloc_counters.value("alloc.quarantine_merges");
    return s;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0;
    for (double v : values) {
        CHERIVOKE_ASSERT(v > 0, "(geomean requires positive values)");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace stats
} // namespace cherivoke

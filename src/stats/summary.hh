/**
 * @file
 * Running summary statistics and small aggregate helpers (geometric
 * mean, ratios) used by the experiment harness when reporting the
 * paper's per-benchmark rows and geomean columns.
 */

#ifndef CHERIVOKE_STATS_SUMMARY_HH
#define CHERIVOKE_STATS_SUMMARY_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/counters.hh"

namespace cherivoke {
namespace stats {

/** Single-pass running mean / min / max / variance (Welford). */
class Summary
{
  public:
    void add(double sample);

    size_t count() const { return count_; }
    double mean() const;
    double min() const;
    double max() const;
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double total() const { return total_; }

  private:
    size_t count_ = 0;
    double mean_ = 0;
    double m2_ = 0;
    double min_ = 0;
    double max_ = 0;
    double total_ = 0;
};

/**
 * Derived view of the allocator's mutator-path counters: how hard
 * the malloc/free fast path actually worked. Raw counts come from
 * the DlAllocator CounterGroup (alloc.* counters); the ratios are
 * the quantities worth watching — mean bin-scan length should sit
 * near 1 with the occupancy bitmap, the raw-span rate near 1 with
 * the cached chunk spans, and the merge ratio is the §5.2
 * aggregation quality (internal frees per program free shrink as it
 * rises).
 */
struct MutatorPathSummary
{
    uint64_t mallocCalls = 0;
    uint64_t quarantineFrees = 0;
    uint64_t binSearches = 0;       //!< takeFromBins invocations
    uint64_t binScanSteps = 0;      //!< free-list nodes examined
    uint64_t rawHeaderAccesses = 0; //!< chunk fields via host span
    uint64_t slowHeaderAccesses = 0; //!< out-of-span fallbacks
    uint64_t quarantineMerges = 0;

    /** Free-list nodes examined per takeFromBins call. */
    double meanBinScanLength() const;
    /** Fraction of chunk-metadata accesses served by the raw span. */
    double rawSpanRate() const;
    /** Runs merged per quarantined free (0..2). */
    double mergeRatio() const;

    /** Human-readable block for bench reports. */
    std::string render() const;
};

/** Build the summary from a DlAllocator counter group. */
MutatorPathSummary
summarizeMutatorPath(const CounterGroup &alloc_counters);

/** Geometric mean of a vector of positive values. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &values);

} // namespace stats
} // namespace cherivoke

#endif // CHERIVOKE_STATS_SUMMARY_HH

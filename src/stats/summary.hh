/**
 * @file
 * Running summary statistics and small aggregate helpers (geometric
 * mean, ratios) used by the experiment harness when reporting the
 * paper's per-benchmark rows and geomean columns.
 */

#ifndef CHERIVOKE_STATS_SUMMARY_HH
#define CHERIVOKE_STATS_SUMMARY_HH

#include <cstddef>
#include <vector>

namespace cherivoke {
namespace stats {

/** Single-pass running mean / min / max / variance (Welford). */
class Summary
{
  public:
    void add(double sample);

    size_t count() const { return count_; }
    double mean() const;
    double min() const;
    double max() const;
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double total() const { return total_; }

  private:
    size_t count_ = 0;
    double mean_ = 0;
    double m2_ = 0;
    double min_ = 0;
    double max_ = 0;
    double total_ = 0;
};

/** Geometric mean of a vector of positive values. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &values);

} // namespace stats
} // namespace cherivoke

#endif // CHERIVOKE_STATS_SUMMARY_HH

/**
 * @file
 * Plain-text aligned tables for the benchmark harness, so every bench
 * binary prints the same rows/series the paper reports in a stable,
 * diffable format.
 */

#ifndef CHERIVOKE_STATS_TABLE_HH
#define CHERIVOKE_STATS_TABLE_HH

#include <string>
#include <vector>

namespace cherivoke {
namespace stats {

/** A simple left/right-aligned text table builder. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double value, int precision = 2);

    /** Convenience: format a percentage ("4.7%"). */
    static std::string percent(double fraction, int precision = 1);

    /** Render with a header underline and 2-space column gaps. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace stats
} // namespace cherivoke

#endif // CHERIVOKE_STATS_TABLE_HH

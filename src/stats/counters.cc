#include "stats/counters.hh"

#include <sstream>

namespace cherivoke {
namespace stats {

Counter &
CounterGroup::counter(const std::string &name)
{
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        order_.push_back(name);
        it = counters_.emplace(name, Counter{}).first;
    }
    return it->second;
}

uint64_t
CounterGroup::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

bool
CounterGroup::has(const std::string &name) const
{
    return counters_.count(name) != 0;
}

void
CounterGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
}

std::string
CounterGroup::report() const
{
    std::ostringstream os;
    for (const auto &name : order_) {
        os << name << " " << counters_.at(name).value() << "\n";
    }
    return os.str();
}

} // namespace stats
} // namespace cherivoke

#include "stats/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/logging.hh"

namespace cherivoke {
namespace stats {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    CHERIVOKE_ASSERT(!headers_.empty());
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    CHERIVOKE_ASSERT(cells.size() == headers_.size(),
                     "(row arity mismatch)");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::percent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            // First column left-aligned (names); the rest right-aligned.
            if (c == 0) {
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            } else {
                os << std::string(widths[c] - row[c].size(), ' ')
                   << row[c];
            }
            if (c + 1 < row.size())
                os << "  ";
        }
        os << "\n";
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

} // namespace stats
} // namespace cherivoke

#include "cache/traffic.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace cache {

void
TrafficLog::access(uint64_t addr, uint64_t size, bool write)
{
    CHERIVOKE_ASSERT(size <= UINT32_MAX);
    Op op;
    op.addr = addr;
    op.size = static_cast<uint32_t>(size);
    op.kind = OpKind::Access;
    op.flags = write ? kWrite : 0;
    ops_.push_back(op);
}

void
TrafficLog::cloadTags(uint64_t line_addr, bool region_has_tags,
                      bool prefetch_if_tagged, bool line_has_tags)
{
    Op op;
    op.addr = line_addr;
    op.kind = OpKind::CloadTags;
    op.flags = static_cast<uint8_t>(
        (region_has_tags ? kRegionHasTags : 0) |
        (prefetch_if_tagged ? kPrefetch : 0) |
        (line_has_tags ? kLineHasTags : 0));
    ops_.push_back(op);
}

void
TrafficLog::revocationTagWrite(uint64_t line_addr)
{
    Op op;
    op.addr = line_addr;
    op.kind = OpKind::TagWrite;
    ops_.push_back(op);
}

void
TrafficLog::replayInto(TrafficSink &sink) const
{
    for (const Op &op : ops_) {
        switch (op.kind) {
          case OpKind::Access:
            sink.access(op.addr, op.size, op.flags & kWrite);
            break;
          case OpKind::CloadTags:
            sink.cloadTags(op.addr, op.flags & kRegionHasTags,
                           op.flags & kPrefetch,
                           op.flags & kLineHasTags);
            break;
          case OpKind::TagWrite:
            sink.revocationTagWrite(op.addr);
            break;
        }
    }
}

} // namespace cache
} // namespace cherivoke

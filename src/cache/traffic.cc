#include "cache/traffic.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace cache {

void
TrafficLog::append(OpKind kind, uint64_t addr, uint32_t size,
                   uint8_t flags)
{
    ++events_;
    if (!ops_.empty()) {
        Op &back = ops_.back();
        if (back.kind == kind && back.flags == flags &&
            back.size == size && back.count < UINT32_MAX) {
            if (back.count == 1) {
                // The second event fixes the extent's stride (any
                // difference, including 0 for a repeated address).
                back.stride = addr - back.addr;
                back.count = 2;
                return;
            }
            if (addr == back.addr + back.stride * back.count) {
                ++back.count;
                return;
            }
        }
    }
    Op op;
    op.addr = addr;
    op.size = size;
    op.kind = kind;
    op.flags = flags;
    ops_.push_back(op);
}

void
TrafficLog::access(uint64_t addr, uint64_t size, bool write)
{
    CHERIVOKE_ASSERT(size <= UINT32_MAX);
    append(OpKind::Access, addr, static_cast<uint32_t>(size),
           write ? kWrite : 0);
}

void
TrafficLog::cloadTags(uint64_t line_addr, bool region_has_tags,
                      bool prefetch_if_tagged, bool line_has_tags)
{
    append(OpKind::CloadTags, line_addr,
           0,
           static_cast<uint8_t>(
               (region_has_tags ? kRegionHasTags : 0) |
               (prefetch_if_tagged ? kPrefetch : 0) |
               (line_has_tags ? kLineHasTags : 0)));
}

void
TrafficLog::revocationTagWrite(uint64_t line_addr)
{
    append(OpKind::TagWrite, line_addr, 0, 0);
}

void
TrafficLog::replayInto(TrafficSink &sink) const
{
    for (const Op &op : ops_) {
        for (uint32_t i = 0; i < op.count; ++i) {
            const uint64_t addr = op.addr + op.stride * i;
            switch (op.kind) {
              case OpKind::Access:
                sink.access(addr, op.size, op.flags & kWrite);
                break;
              case OpKind::CloadTags:
                sink.cloadTags(addr, op.flags & kRegionHasTags,
                               op.flags & kPrefetch,
                               op.flags & kLineHasTags);
                break;
              case OpKind::TagWrite:
                sink.revocationTagWrite(addr);
                break;
            }
        }
    }
}

} // namespace cache
} // namespace cherivoke

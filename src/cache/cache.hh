/**
 * @file
 * A set-associative cache performance model with LRU replacement and
 * per-line dirty bits.
 *
 * This models cache *state*, not contents: functional data lives in
 * mem::TaggedMemory; the hierarchy only decides which accesses travel
 * how far. Per figure 4 of the paper, each line conceptually carries
 * a tag-metadata block alongside its data banks so a CLoadTags bus
 * request can be answered in a single lookup; for this state model it
 * suffices that a present line can answer tag queries without any
 * further traffic.
 */

#ifndef CHERIVOKE_CACHE_CACHE_HH
#define CHERIVOKE_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/units.hh"

namespace cherivoke {
namespace cache {

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::string name = "cache";
    uint64_t sizeBytes = 32 * KiB;
    unsigned ways = 8;
    uint64_t lineBytes = kLineBytes;

    uint64_t numSets() const { return sizeBytes / (ways * lineBytes); }
};

/** Result of a line access. */
struct LineAccess
{
    bool hit = false;
    bool evictedDirty = false;     //!< a dirty victim was written back
    uint64_t victimLine = 0;       //!< line address of the victim
    bool evictedValid = false;     //!< any victim at all
};

/** One set-associative cache level. */
class Cache
{
  public:
    explicit Cache(const CacheGeometry &geom);

    const CacheGeometry &geometry() const { return geom_; }

    /**
     * Access the line containing @p line_addr (must be line-aligned).
     * On a miss the line is filled (allocate-on-miss for both reads
     * and writes) and the LRU victim is reported.
     * @param write marks the line dirty on hit or fill
     */
    LineAccess access(uint64_t line_addr, bool write);

    /** Probe without disturbing state: is the line present? */
    bool probe(uint64_t line_addr) const;

    /** Invalidate the line if present; @return true if it was dirty. */
    bool invalidate(uint64_t line_addr);

    /** Drop all lines (e.g.\ between experiment repetitions). */
    void reset();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }

    /** Number of currently valid lines. */
    uint64_t validLines() const;

  private:
    struct Way
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lru = 0; //!< larger = more recently used
    };

    uint64_t setIndex(uint64_t line_addr) const;
    uint64_t tagOf(uint64_t line_addr) const;

    CacheGeometry geom_;
    std::vector<std::vector<Way>> sets_;
    uint64_t lruClock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

} // namespace cache
} // namespace cherivoke

#endif // CHERIVOKE_CACHE_CACHE_HH

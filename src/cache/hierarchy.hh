/**
 * @file
 * The modelled memory hierarchy: L1D, L2, optional LLC, the tag
 * controller, and DRAM. An inclusive write-back hierarchy with
 * allocate-on-miss, matching the structural assumptions of the
 * paper's evaluation platforms (table 1).
 *
 * The hierarchy is a pure performance model: callers perform
 * functional reads/writes against mem::TaggedMemory and mirror them
 * here for accounting. Off-core traffic (figure 10) is everything
 * that crosses the L2 boundary.
 */

#ifndef CHERIVOKE_CACHE_HIERARCHY_HH
#define CHERIVOKE_CACHE_HIERARCHY_HH

#include <memory>
#include <optional>

#include "cache/cache.hh"
#include "cache/dram.hh"
#include "cache/tag_controller.hh"

namespace cherivoke {
namespace cache {

/** Full hierarchy configuration. */
struct HierarchyConfig
{
    CacheGeometry l1{"l1d", 32 * KiB, 8, kLineBytes};
    CacheGeometry l2{"l2", 256 * KiB, 4, kLineBytes};
    /** Present on the x86 profile; absent on the CHERI FPGA. */
    std::optional<CacheGeometry> llc =
        CacheGeometry{"llc", 8 * MiB, 16, kLineBytes};
    CacheGeometry tagCache{"tagcache", 32 * KiB, 4, kLineBytes};
    DramConfig dram{};
};

/** Where an access was satisfied. */
enum class HitLevel
{
    L1,
    L2,
    Llc,
    Dram,
    TagCache, //!< CLoadTags answered without a data fetch
};

/** Outcome of one modelled access. */
struct AccessOutcome
{
    HitLevel level = HitLevel::L1;
    bool offCore = false;          //!< crossed the L2 boundary
    uint64_t dramBytes = 0;        //!< DRAM traffic this access caused
};

/** The modelled cache/DRAM system. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &config = HierarchyConfig{});

    /**
     * Model a data access touching [addr, addr+size); decomposed into
     * line accesses. Returns the outcome of the *last* line access.
     */
    AccessOutcome access(uint64_t addr, uint64_t size, bool write);

    /**
     * Model a CLoadTags request (§3.4.1): if the line is present in
     * any data cache it answers directly; otherwise the tag
     * controller resolves it without fetching data, and the response
     * is deliberately not cached in the data hierarchy (streaming
     * semantics).
     * @param region_has_tags functional root-level tag presence for
     *        the covering 8 KiB region
     * @param prefetch_if_tagged the §3.4.1 future-work hint: when
     *        the tag response is non-zero, prefetch the data line
     *        into the LLC so the sweep's subsequent read hits —
     *        DRAM traffic for the line is charged here instead
     */
    AccessOutcome cloadTags(uint64_t line_addr, bool region_has_tags,
                            bool prefetch_if_tagged = false,
                            bool line_has_tags = false);

    /** Account the tag-bit clear of a revocation at this line. */
    void recordRevocationTagWrite(uint64_t line_addr);

    Cache &l1() { return *l1_; }
    Cache &l2() { return *l2_; }
    Cache *llc() { return llc_ ? llc_.get() : nullptr; }
    TagController &tagController() { return tags_; }
    Dram &dram() { return dram_; }
    const Dram &dram() const { return dram_; }

    /** Lines that crossed the L2 boundary (reads + writebacks). */
    uint64_t offCoreLines() const { return off_core_lines_; }

    /** Drop all cached state and traffic counters. */
    void reset();

  private:
    AccessOutcome accessLine(uint64_t line_addr, bool write);

    HierarchyConfig config_;
    Dram dram_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> llc_;
    TagController tags_;
    uint64_t off_core_lines_ = 0;
};

} // namespace cache
} // namespace cherivoke

#endif // CHERIVOKE_CACHE_HIERARCHY_HH

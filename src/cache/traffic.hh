/**
 * @file
 * Traffic accounting for the sweep path: a sink abstraction over the
 * modelled cache hierarchy, plus a deterministic record/replay log.
 *
 * The cache::Hierarchy is stateful and single-threaded, but the
 * revocation sweep is embarrassingly parallel (paper §3.5). To model
 * traffic for a threaded sweep without serialising it, each sweep
 * worker records its accesses into a private TrafficLog; after the
 * workers join, the logs are replayed into the hierarchy in worklist
 * order. Because the page worklist is partitioned into contiguous
 * index ranges, the replayed access sequence is exactly the sequence
 * a serial sweep would have issued — so the threaded sweep reports
 * traffic totals identical to the serial sweep.
 */

#ifndef CHERIVOKE_CACHE_TRAFFIC_HH
#define CHERIVOKE_CACHE_TRAFFIC_HH

#include <cstdint>
#include <vector>

#include "cache/hierarchy.hh"

namespace cherivoke {
namespace cache {

/** Consumer of modelled memory-traffic events. */
class TrafficSink
{
  public:
    virtual ~TrafficSink() = default;

    /** A data access touching [addr, addr+size). */
    virtual void access(uint64_t addr, uint64_t size, bool write) = 0;

    /** A CLoadTags request for @p line_addr (§3.4.1). */
    virtual void cloadTags(uint64_t line_addr, bool region_has_tags,
                           bool prefetch_if_tagged,
                           bool line_has_tags) = 0;

    /** The tag-bit clear of a revocation at this line. */
    virtual void revocationTagWrite(uint64_t line_addr) = 0;
};

/** Forwards events straight into a Hierarchy (the serial path). */
class HierarchySink final : public TrafficSink
{
  public:
    explicit HierarchySink(Hierarchy &hierarchy)
        : hierarchy_(&hierarchy)
    {}

    void
    access(uint64_t addr, uint64_t size, bool write) override
    {
        hierarchy_->access(addr, size, write);
    }

    void
    cloadTags(uint64_t line_addr, bool region_has_tags,
              bool prefetch_if_tagged, bool line_has_tags) override
    {
        hierarchy_->cloadTags(line_addr, region_has_tags,
                              prefetch_if_tagged, line_has_tags);
    }

    void
    revocationTagWrite(uint64_t line_addr) override
    {
        hierarchy_->recordRevocationTagWrite(line_addr);
    }

  private:
    Hierarchy *hierarchy_;
};

/**
 * Records events into a compact per-thread buffer for deterministic
 * replay after the sweep workers join.
 *
 * The sweep is streaming (§3.4): its event sequence is dominated by
 * runs of consecutive same-kind events whose addresses advance by a
 * fixed stride — sequential CLoadTags over a tag-empty region,
 * sequential line reads, repeated probes of one shadow byte. The log
 * therefore run-length-compresses: each record is an *extent*
 * (base address, stride, count) of identical-attribute events, and a
 * new event extends the last record whenever kind, flags, size and
 * the arithmetic progression all match. Replay expands extents back
 * to the exact serial event sequence, so record/replay traffic
 * totals are unchanged — only the log's memory shrinks (a full-page
 * skipped sub-run collapses 64 records into one).
 */
class TrafficLog final : public TrafficSink
{
  public:
    void access(uint64_t addr, uint64_t size, bool write) override;
    void cloadTags(uint64_t line_addr, bool region_has_tags,
                   bool prefetch_if_tagged,
                   bool line_has_tags) override;
    void revocationTagWrite(uint64_t line_addr) override;

    /** Replay every recorded event, in order, into @p sink. */
    void replayInto(TrafficSink &sink) const;

    /** Extent records held (the log's memory footprint). */
    size_t size() const { return ops_.size(); }
    /** Events recorded (what replayInto() will emit). */
    uint64_t eventCount() const { return events_; }
    bool empty() const { return ops_.empty(); }
    void
    clear()
    {
        ops_.clear();
        events_ = 0;
    }

  private:
    enum class OpKind : uint8_t
    {
        Access,
        CloadTags,
        TagWrite,
    };

    /** Flag bits, by op kind. */
    static constexpr uint8_t kWrite = 1 << 0;         // Access
    static constexpr uint8_t kRegionHasTags = 1 << 0; // CloadTags
    static constexpr uint8_t kPrefetch = 1 << 1;      // CloadTags
    static constexpr uint8_t kLineHasTags = 1 << 2;   // CloadTags

    /** One extent: @c count events at addr, addr+stride,
     *  addr+2*stride, ... (mod 2^64), all sharing kind/size/flags. */
    struct Op
    {
        uint64_t addr = 0;
        uint64_t stride = 0;
        uint32_t count = 1;
        uint32_t size = 0;
        OpKind kind = OpKind::Access;
        uint8_t flags = 0;
    };

    /** Extend the last extent or start a new one. */
    void append(OpKind kind, uint64_t addr, uint32_t size,
                uint8_t flags);

    std::vector<Op> ops_;
    uint64_t events_ = 0;
};

} // namespace cache
} // namespace cherivoke

#endif // CHERIVOKE_CACHE_TRAFFIC_HH

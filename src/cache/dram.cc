#include "cache/dram.hh"

namespace cherivoke {
namespace cache {

double
Dram::streamTimeSeconds() const
{
    const double read_time =
        static_cast<double>(read_bytes_) / config_.readBandwidth;
    const double write_time =
        static_cast<double>(write_bytes_) / config_.writeBandwidth;
    return read_time + write_time;
}

void
Dram::reset()
{
    read_bytes_ = 0;
    write_bytes_ = 0;
    reads_ = 0;
    writes_ = 0;
}

} // namespace cache
} // namespace cherivoke

/**
 * @file
 * The tag controller: a hierarchical tag table in DRAM fronted by a
 * tag cache, after Joannou et al. (ICCD 2017), which the paper's
 * CLoadTags instruction (§3.4.1) relies on.
 *
 * Layout: the leaf level holds 1 tag bit per 16-byte granule, so one
 * 64-byte tag-table line covers 512 granules = 8 KiB of memory. The
 * root level holds 1 bit per leaf line ("any tag set in this 8 KiB?"),
 * so one 64-byte root line covers 512 leaf lines = 4 MiB of memory.
 * A root bit of zero answers a CLoadTags miss without touching the
 * leaf level.
 */

#ifndef CHERIVOKE_CACHE_TAG_CONTROLLER_HH
#define CHERIVOKE_CACHE_TAG_CONTROLLER_HH

#include <cstdint>

#include "cache/cache.hh"
#include "cache/dram.hh"

namespace cherivoke {
namespace cache {

/** Bytes of memory covered by one leaf tag-table line. */
constexpr uint64_t kLeafLineCoverage = kLineBytes * 8 * kGranuleBytes;
/** Bytes of memory covered by one root tag-table line. */
constexpr uint64_t kRootLineCoverage = kLeafLineCoverage * 512;

/** Synthetic address bases for tag-table lines (distinct spaces). */
constexpr uint64_t kLeafTableBase = uint64_t{1} << 56;
constexpr uint64_t kRootTableBase = uint64_t{1} << 57;

/** Outcome of a tag lookup through the controller. */
struct TagLookup
{
    bool tagCacheHit = false;
    bool rootShortCircuit = false; //!< root bit 0: leaf never fetched
    uint64_t dramLineReads = 0;    //!< tag-table lines read from DRAM
};

/**
 * Models the tag-cache + hierarchical-table path of a CLoadTags
 * request that missed in all data caches. The *functional* tag values
 * come from mem::TaggedMemory; this class only accounts traffic.
 */
class TagController
{
  public:
    /**
     * @param geom tag-cache geometry (Joannou-style, e.g. 32 KiB)
     * @param dram shared DRAM traffic sink
     */
    TagController(const CacheGeometry &geom, Dram &dram);

    /**
     * Account a tag lookup for the memory line at @p line_addr.
     * @param region_has_tags whether any granule in the covering
     *        8 KiB leaf region holds a tag (drives the root-level
     *        short circuit; the caller derives it functionally)
     */
    TagLookup lookup(uint64_t line_addr, bool region_has_tags);

    /** Account the tag-write traffic of a revocation that clears
     *  tags in the region covering @p line_addr. */
    void recordTagWrite(uint64_t line_addr);

    Cache &tagCache() { return tag_cache_; }
    const Cache &tagCache() const { return tag_cache_; }

    uint64_t lookups() const { return lookups_; }
    uint64_t rootShortCircuits() const { return root_short_circuits_; }

    void reset();

  private:
    uint64_t leafLineOf(uint64_t line_addr) const;
    uint64_t rootLineOf(uint64_t line_addr) const;

    Cache tag_cache_;
    Dram &dram_;
    uint64_t lookups_ = 0;
    uint64_t root_short_circuits_ = 0;
};

} // namespace cache
} // namespace cherivoke

#endif // CHERIVOKE_CACHE_TAG_CONTROLLER_HH

/**
 * @file
 * DRAM traffic and timing model. Traffic is counted in bytes; time is
 * derived from a peak bandwidth plus a per-access latency component,
 * which is all the fidelity the paper's sweep-bandwidth analysis
 * (figure 7) requires.
 */

#ifndef CHERIVOKE_CACHE_DRAM_HH
#define CHERIVOKE_CACHE_DRAM_HH

#include <cstdint>

namespace cherivoke {
namespace cache {

/** DRAM configuration. */
struct DramConfig
{
    /** Peak sequential read bandwidth in bytes/second.
     *  The paper's x86 system measures 19,405 MiB/s. */
    double readBandwidth = 19405.0 * 1024 * 1024;
    /** Peak write bandwidth in bytes/second. */
    double writeBandwidth = 19405.0 * 1024 * 1024 * 0.6;
    /** Idle row-miss latency in nanoseconds. */
    double latencyNs = 80.0;
};

/** Accumulates DRAM traffic for one experiment. */
class Dram
{
  public:
    explicit Dram(const DramConfig &config = DramConfig{})
        : config_(config)
    {}

    const DramConfig &config() const { return config_; }

    void read(uint64_t bytes) { read_bytes_ += bytes; ++reads_; }
    void write(uint64_t bytes) { write_bytes_ += bytes; ++writes_; }

    uint64_t readBytes() const { return read_bytes_; }
    uint64_t writeBytes() const { return write_bytes_; }
    uint64_t totalBytes() const { return read_bytes_ + write_bytes_; }
    uint64_t readAccesses() const { return reads_; }
    uint64_t writeAccesses() const { return writes_; }

    /** Seconds needed to stream the accumulated traffic. */
    double streamTimeSeconds() const;

    void reset();

  private:
    DramConfig config_;
    uint64_t read_bytes_ = 0;
    uint64_t write_bytes_ = 0;
    uint64_t reads_ = 0;
    uint64_t writes_ = 0;
};

} // namespace cache
} // namespace cherivoke

#endif // CHERIVOKE_CACHE_DRAM_HH

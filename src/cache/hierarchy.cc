#include "cache/hierarchy.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace cache {

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : config_(config),
      dram_(config.dram),
      l1_(std::make_unique<Cache>(config.l1)),
      l2_(std::make_unique<Cache>(config.l2)),
      llc_(config.llc ? std::make_unique<Cache>(*config.llc) : nullptr),
      tags_(config.tagCache, dram_)
{}

AccessOutcome
Hierarchy::access(uint64_t addr, uint64_t size, bool write)
{
    CHERIVOKE_ASSERT(size > 0);
    const uint64_t first = alignDown(addr, kLineBytes);
    const uint64_t last = alignDown(addr + size - 1, kLineBytes);
    AccessOutcome outcome;
    for (uint64_t line = first; line <= last; line += kLineBytes)
        outcome = accessLine(line, write);
    return outcome;
}

AccessOutcome
Hierarchy::accessLine(uint64_t line_addr, bool write)
{
    AccessOutcome outcome;

    const LineAccess a1 = l1_->access(line_addr, write);
    if (a1.hit) {
        outcome.level = HitLevel::L1;
        return outcome;
    }
    // L1 victim writeback lands in L2.
    if (a1.evictedDirty)
        l2_->access(a1.victimLine, true);

    const LineAccess a2 = l2_->access(line_addr, false);
    if (a2.hit) {
        outcome.level = HitLevel::L2;
        return outcome;
    }
    // Past this point the access crosses the L2 boundary.
    outcome.offCore = true;
    ++off_core_lines_;
    if (a2.evictedDirty) {
        ++off_core_lines_;
        if (llc_) {
            const LineAccess wb = llc_->access(a2.victimLine, true);
            if (wb.evictedDirty)
                dram_.write(kLineBytes);
        } else {
            dram_.write(kLineBytes);
            outcome.dramBytes += kLineBytes;
        }
    }

    if (llc_) {
        const LineAccess a3 = llc_->access(line_addr, write);
        if (a3.hit) {
            outcome.level = HitLevel::Llc;
            return outcome;
        }
        if (a3.evictedDirty) {
            dram_.write(kLineBytes);
            outcome.dramBytes += kLineBytes;
        }
    }

    dram_.read(kLineBytes);
    outcome.dramBytes += kLineBytes;
    outcome.level = HitLevel::Dram;
    return outcome;
}

AccessOutcome
Hierarchy::cloadTags(uint64_t line_addr, bool region_has_tags,
                     bool prefetch_if_tagged, bool line_has_tags)
{
    CHERIVOKE_ASSERT(isAligned(line_addr, kLineBytes));
    AccessOutcome outcome;

    // Any cache holding the line answers from its tag-metadata block
    // (figure 4) without further traffic.
    if (l1_->probe(line_addr)) {
        outcome.level = HitLevel::L1;
        return outcome;
    }
    if (l2_->probe(line_addr)) {
        outcome.level = HitLevel::L2;
        return outcome;
    }
    if (llc_ && llc_->probe(line_addr)) {
        outcome.level = HitLevel::Llc;
        return outcome;
    }

    // Miss everywhere: the tag controller answers with tags only.
    outcome.offCore = true;
    ++off_core_lines_;
    const TagLookup t = tags_.lookup(line_addr, region_has_tags);
    outcome.dramBytes = t.dramLineReads * kLineBytes;
    outcome.level = t.tagCacheHit ? HitLevel::TagCache : HitLevel::Dram;

    // §3.4.1 future work: "prefetching data for a cache line when
    // CLoadTags returns a non-zero result". The sweep will read the
    // line next; fetch it into the LLC now so that read hits.
    if (prefetch_if_tagged && line_has_tags && llc_) {
        const LineAccess pf = llc_->access(line_addr, false);
        if (!pf.hit) {
            dram_.read(kLineBytes);
            outcome.dramBytes += kLineBytes;
            if (pf.evictedDirty)
                dram_.write(kLineBytes);
        }
    }
    return outcome;
}

void
Hierarchy::recordRevocationTagWrite(uint64_t line_addr)
{
    tags_.recordTagWrite(line_addr);
}

void
Hierarchy::reset()
{
    l1_->reset();
    l2_->reset();
    if (llc_)
        llc_->reset();
    tags_.reset();
    dram_.reset();
    off_core_lines_ = 0;
}

} // namespace cache
} // namespace cherivoke

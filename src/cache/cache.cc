#include "cache/cache.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace cache {

Cache::Cache(const CacheGeometry &geom)
    : geom_(geom)
{
    CHERIVOKE_ASSERT(isPowerOf2(geom_.lineBytes));
    CHERIVOKE_ASSERT(geom_.ways > 0);
    CHERIVOKE_ASSERT(geom_.sizeBytes % (geom_.ways * geom_.lineBytes)
                         == 0,
                     "(cache size must divide into ways*line)");
    const uint64_t num_sets = geom_.numSets();
    CHERIVOKE_ASSERT(isPowerOf2(num_sets),
                     "(set count must be a power of two)");
    sets_.assign(num_sets, std::vector<Way>(geom_.ways));
}

uint64_t
Cache::setIndex(uint64_t line_addr) const
{
    return (line_addr / geom_.lineBytes) & (geom_.numSets() - 1);
}

uint64_t
Cache::tagOf(uint64_t line_addr) const
{
    return line_addr / geom_.lineBytes / geom_.numSets();
}

LineAccess
Cache::access(uint64_t line_addr, bool write)
{
    CHERIVOKE_ASSERT(isAligned(line_addr, geom_.lineBytes),
                     "(access must be line aligned)");
    auto &set = sets_[setIndex(line_addr)];
    const uint64_t tag = tagOf(line_addr);
    LineAccess result;

    for (auto &way : set) {
        if (way.valid && way.tag == tag) {
            way.lru = ++lruClock_;
            way.dirty |= write;
            ++hits_;
            result.hit = true;
            return result;
        }
    }

    // Miss: pick the LRU victim (or any invalid way).
    ++misses_;
    Way *victim = &set[0];
    for (auto &way : set) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lru < victim->lru)
            victim = &way;
    }
    if (victim->valid) {
        result.evictedValid = true;
        result.victimLine =
            (victim->tag * geom_.numSets() + setIndex(line_addr)) *
            geom_.lineBytes;
        if (victim->dirty) {
            result.evictedDirty = true;
            ++writebacks_;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lru = ++lruClock_;
    return result;
}

bool
Cache::probe(uint64_t line_addr) const
{
    const auto &set = sets_[setIndex(line_addr)];
    const uint64_t tag = tagOf(line_addr);
    for (const auto &way : set) {
        if (way.valid && way.tag == tag)
            return true;
    }
    return false;
}

bool
Cache::invalidate(uint64_t line_addr)
{
    auto &set = sets_[setIndex(line_addr)];
    const uint64_t tag = tagOf(line_addr);
    for (auto &way : set) {
        if (way.valid && way.tag == tag) {
            const bool was_dirty = way.dirty;
            way.valid = false;
            way.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

void
Cache::reset()
{
    for (auto &set : sets_) {
        for (auto &way : set)
            way = Way{};
    }
    lruClock_ = 0;
    hits_ = misses_ = writebacks_ = 0;
}

uint64_t
Cache::validLines() const
{
    uint64_t n = 0;
    for (const auto &set : sets_) {
        for (const auto &way : set)
            n += way.valid ? 1 : 0;
    }
    return n;
}

} // namespace cache
} // namespace cherivoke

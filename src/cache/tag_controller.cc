#include "cache/tag_controller.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace cache {

TagController::TagController(const CacheGeometry &geom, Dram &dram)
    : tag_cache_(geom), dram_(dram)
{}

uint64_t
TagController::leafLineOf(uint64_t line_addr) const
{
    return kLeafTableBase +
           (line_addr / kLeafLineCoverage) * kLineBytes;
}

uint64_t
TagController::rootLineOf(uint64_t line_addr) const
{
    return kRootTableBase +
           (line_addr / kRootLineCoverage) * kLineBytes;
}

TagLookup
TagController::lookup(uint64_t line_addr, bool region_has_tags)
{
    ++lookups_;
    TagLookup result;

    // Root level first: cached root lines are nearly free, and a zero
    // root bit proves the 8 KiB region is tag-free.
    const uint64_t root_line = rootLineOf(line_addr);
    const LineAccess root = tag_cache_.access(root_line, false);
    if (!root.hit) {
        dram_.read(kLineBytes);
        ++result.dramLineReads;
    }
    if (root.evictedDirty)
        dram_.write(kLineBytes);
    if (!region_has_tags) {
        ++root_short_circuits_;
        result.rootShortCircuit = true;
        result.tagCacheHit = root.hit;
        return result;
    }

    // Leaf level: the line holding the 4 tag bits for this data line.
    const uint64_t leaf_line = leafLineOf(line_addr);
    const LineAccess leaf = tag_cache_.access(leaf_line, false);
    result.tagCacheHit = root.hit && leaf.hit;
    if (!leaf.hit) {
        dram_.read(kLineBytes);
        ++result.dramLineReads;
    }
    if (leaf.evictedDirty)
        dram_.write(kLineBytes);
    return result;
}

void
TagController::recordTagWrite(uint64_t line_addr)
{
    // Revocation clears tag bits: dirty the leaf line; an eventual
    // writeback costs one DRAM line write. We charge it immediately
    // on first dirtying miss for simplicity.
    const uint64_t leaf_line = leafLineOf(line_addr);
    const LineAccess leaf = tag_cache_.access(leaf_line, true);
    if (!leaf.hit)
        dram_.read(kLineBytes);
    if (leaf.evictedDirty)
        dram_.write(kLineBytes);
}

void
TagController::reset()
{
    tag_cache_.reset();
    lookups_ = 0;
    root_short_circuits_ = 0;
}

} // namespace cache
} // namespace cherivoke

#include "workload/trace.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "support/logging.hh"

namespace cherivoke {
namespace workload {

namespace {

const char *
opName(OpKind kind)
{
    switch (kind) {
      case OpKind::Malloc: return "malloc";
      case OpKind::Free: return "free";
      case OpKind::StorePtr: return "storeptr";
      case OpKind::StoreData: return "storedata";
      case OpKind::RootPtr: return "rootptr";
      case OpKind::SpawnTenant: return "spawn";
      case OpKind::RetireTenant: return "retire";
    }
    return "?";
}

OpKind
opFromName(const std::string &name)
{
    if (name == "malloc")
        return OpKind::Malloc;
    if (name == "free")
        return OpKind::Free;
    if (name == "storeptr")
        return OpKind::StorePtr;
    if (name == "storedata")
        return OpKind::StoreData;
    if (name == "rootptr")
        return OpKind::RootPtr;
    if (name == "spawn")
        return OpKind::SpawnTenant;
    if (name == "retire")
        return OpKind::RetireTenant;
    fatal("unknown trace op '%s'", name.c_str());
}

} // namespace

double
Trace::virtualSeconds() const
{
    double t = 0;
    for (const auto &op : ops)
        t += op.dt;
    return t;
}

bool
Trace::hasLifecycleOps() const
{
    for (const auto &op : ops) {
        if (isLifecycleOp(op.kind))
            return true;
    }
    return false;
}

void
Trace::save(std::ostream &os) const
{
    os << "# cherivoke-trace v1\n";
    for (const auto &op : ops) {
        os << opName(op.kind) << ' ' << op.id << ' ' << op.size << ' '
           << op.src << ' ' << op.dst << ' ' << op.offset << ' '
           << op.dt << '\n';
    }
}

Trace
Trace::load(std::istream &is)
{
    Trace trace;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string name;
        TraceOp op;
        ls >> name >> op.id >> op.size >> op.src >> op.dst >>
            op.offset >> op.dt;
        if (ls.fail())
            fatal("malformed trace line: %s", line.c_str());
        op.kind = opFromName(name);
        trace.ops.push_back(op);
    }
    return trace;
}

} // namespace workload
} // namespace cherivoke

#include "workload/synth.hh"

#include <algorithm>
#include <deque>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/units.hh"

namespace cherivoke {
namespace workload {

namespace {

/** Live-object bookkeeping during synthesis. */
struct LiveObject
{
    uint64_t id;
    uint64_t size;
};

} // namespace

Trace
synthesize(const BenchmarkProfile &profile, const SynthConfig &config)
{
    Trace trace;
    Rng rng(config.seed);

    const double s = config.scale;
    const uint64_t live_target = std::max<uint64_t>(
        static_cast<uint64_t>(profile.liveHeapMiB * MiB * s),
        config.minLiveBytes);
    const double free_bytes_per_sec =
        profile.freeRateMiBps * static_cast<double>(MiB) * s;
    // Scale large-object sizes down when the scaled byte rate would
    // otherwise produce too few events to exercise the machinery
    // (the measured MiB/s target is preserved either way).
    double mean_alloc = profile.meanAllocBytes();
    if (free_bytes_per_sec > 0) {
        const double max_mean =
            free_bytes_per_sec * config.durationSec / 30.0;
        mean_alloc = std::clamp(mean_alloc, 64.0,
                                std::max(1024.0, max_mean));
    }
    const double alloc_events_per_sec =
        free_bytes_per_sec / mean_alloc;

    // Pointer placement is *bursty*: programs cluster pointer-dense
    // structures (vtables, node pools) onto the same pages, so page
    // density tracks the byte fraction of pointer-bearing phases
    // rather than a per-object coin flip. Phases span several pages
    // of consecutive allocations.
    const double ptr_phase_fraction = profile.pagesWithPointers;
    const double line_density_within =
        ptr_phase_fraction > 0.01
            ? std::min(1.0, profile.linePointerDensity /
                                ptr_phase_fraction)
            : 0.0;
    bool ptr_phase = false;
    int64_t phase_bytes_left = 0;

    const uint64_t size_lo = std::max<uint64_t>(
        16, static_cast<uint64_t>(mean_alloc / 4));
    const uint64_t size_hi = std::max<uint64_t>(
        size_lo + 16, static_cast<uint64_t>(mean_alloc * 2.5));

    uint64_t next_id = 1;
    uint64_t live_bytes = 0;
    std::deque<LiveObject> live; // front = oldest

    auto emit_alloc = [&](double dt) {
        const uint64_t size = rng.nextLogUniform(size_lo, size_hi);
        const uint64_t id = next_id++;
        TraceOp op;
        op.kind = OpKind::Malloc;
        op.id = id;
        op.size = size;
        op.dt = dt;
        trace.ops.push_back(op);
        live.push_back(LiveObject{id, size});
        live_bytes += size;

        // Phase bookkeeping: switch phases every few pages' worth
        // of allocation, landing in a pointer phase with the target
        // probability.
        phase_bytes_left -= static_cast<int64_t>(size);
        if (phase_bytes_left <= 0) {
            ptr_phase = rng.nextBool(ptr_phase_fraction);
            phase_bytes_left = static_cast<int64_t>(
                rng.nextRange(4, 16) * kPageBytes);
        }

        // Populate the object with pointers to live objects.
        if (ptr_phase && !live.empty()) {
            const uint64_t lines = std::max<uint64_t>(1, size / 64);
            const uint64_t stores = std::max<uint64_t>(
                1, static_cast<uint64_t>(
                       static_cast<double>(lines) *
                       line_density_within));
            for (uint64_t k = 0; k < stores; ++k) {
                const LiveObject &src =
                    live[rng.nextBounded(live.size())];
                TraceOp st;
                st.kind = OpKind::StorePtr;
                st.src = src.id;
                st.dst = id;
                st.offset =
                    size >= 32
                        ? (rng.nextBounded((size - 16) / 16)) * 16
                        : 0;
                trace.ops.push_back(st);
            }
        }
        // Occasionally root the object in globals (stack/global
        // pointers the sweep must also visit).
        if (rng.nextBool(0.05)) {
            TraceOp rt;
            rt.kind = OpKind::RootPtr;
            rt.src = id;
            rt.offset = rng.nextBounded(4096);
            trace.ops.push_back(rt);
        }
    };

    auto emit_free_one = [&]() {
        if (live.empty())
            return;
        size_t idx = 0;
        if (!rng.nextBool(profile.temporalFragmentation)) {
            idx = 0; // FIFO: oldest first
        } else {
            // Temporal fragmentation: free a random-aged object,
            // interleaving lifetimes on the heap (§6.1.1).
            idx = rng.nextBounded(live.size());
        }
        const LiveObject obj = live[idx];
        live.erase(live.begin() + static_cast<long>(idx));
        live_bytes -= obj.size;
        TraceOp op;
        op.kind = OpKind::Free;
        op.id = obj.id;
        trace.ops.push_back(op);
    };

    // Ramp: fill the live set (no virtual time elapses; SPEC-style
    // programs build their working set during init).
    while (live_bytes < live_target)
        emit_alloc(0.0);

    // Steady state.
    if (alloc_events_per_sec > 1.0) {
        const double dt = 1.0 / alloc_events_per_sec;
        const uint64_t steps = static_cast<uint64_t>(
            config.durationSec * alloc_events_per_sec);
        for (uint64_t i = 0; i < steps; ++i) {
            emit_alloc(dt);
            while (live_bytes > live_target)
                emit_free_one();
            // Sprinkle plain data writes (tag-killing overwrites).
            if (rng.nextBool(0.1) && !live.empty()) {
                const LiveObject &dst =
                    live[rng.nextBounded(live.size())];
                TraceOp st;
                st.kind = OpKind::StoreData;
                st.dst = dst.id;
                st.offset =
                    dst.size >= 16
                        ? (rng.nextBounded(dst.size / 8)) * 8
                        : 0;
                trace.ops.push_back(st);
            }
        }
    } else {
        // Allocation-quiet benchmark (bzip2, sjeng, lbm...): virtual
        // time passes with data writes only.
        const int ticks = 100;
        for (int i = 0; i < ticks; ++i) {
            TraceOp st;
            st.kind = OpKind::StoreData;
            st.dst = live.empty() ? 0 : live.front().id;
            st.offset = 0;
            st.dt = config.durationSec / ticks;
            trace.ops.push_back(st);
        }
    }
    return trace;
}

} // namespace workload
} // namespace cherivoke

#include "workload/driver.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cherivoke {
namespace workload {

DensitySample
measureDensities(const mem::AddressSpace &space)
{
    DensitySample sample;
    const auto &memory = space.memory();
    uint64_t pages = 0, pages_with = 0;
    uint64_t lines = 0, lines_with = 0;
    for (const mem::Segment &seg : space.heapSegments()) {
        for (uint64_t p = seg.base; p < seg.end(); p += kPageBytes) {
            const mem::Page *page = memory.pageIfPresent(p);
            if (!page)
                continue; // never-touched page: not resident
            ++pages;
            lines += kPageBytes / kLineBytes;
            if (page->tagCount == 0)
                continue;
            ++pages_with;
            for (uint64_t line = p; line < p + kPageBytes;
                 line += kLineBytes) {
                const unsigned g0 = static_cast<unsigned>(
                    (line & (kPageBytes - 1)) >> kGranuleShift);
                bool any = false;
                for (unsigned i = 0; i < kCapsPerLine; ++i)
                    any |= page->granuleTag(g0 + i);
                lines_with += any ? 1 : 0;
            }
        }
    }
    if (pages > 0) {
        sample.pageDensity =
            static_cast<double>(pages_with) / pages;
        sample.lineDensity =
            static_cast<double>(lines_with) / lines;
    }
    return sample;
}

TraceReplayer::TraceReplayer(mem::AddressSpace &space,
                             alloc::CherivokeAllocator &allocator,
                             revoke::RevocationEngine *engine,
                             const Trace &trace)
    : space_(&space), alloc_(&allocator), engine_(engine),
      trace_(&trace)
{
    // Size the live-object table for the trace's churn up front so
    // the mutator loop never pays a rehash.
    objects_.reserve(trace.ops.size() / 4 + 16);
    pump_ = [this](cache::Hierarchy *hierarchy) {
        engine_->maybeRevoke(hierarchy);
    };
    drain_ = [this](cache::Hierarchy *hierarchy) {
        if (engine_ && engine_->epochOpen())
            engine_->drain(hierarchy);
    };
    deref_ = [this](uint64_t n) {
        if (engine_)
            engine_->notePointerUse(n);
    };
}

void
TraceReplayer::trackPeaks()
{
    result_.peakLiveBytes =
        std::max(result_.peakLiveBytes, alloc_->liveBytes());
    result_.peakQuarantineBytes = std::max(
        result_.peakQuarantineBytes, alloc_->quarantinedBytes());
    result_.peakFootprintBytes = std::max(
        result_.peakFootprintBytes, alloc_->footprintBytes());
    result_.peakLiveAllocs =
        std::max<uint64_t>(result_.peakLiveAllocs, objects_.size());
}

// Pump the engine after an allocator operation: stop-the-world
// and incremental policies run a whole epoch when the quarantine
// budget fills; the concurrent policy advances its open epoch by
// one slice. Densities are sampled whenever an epoch is about to
// open, as the paper samples its core dumps (§5.3).
void
TraceReplayer::pumpEngine(cache::Hierarchy *hierarchy)
{
    if (!engine_)
        return;
    if (!engine_->epochOpen() && alloc_->needsSweep()) {
        const DensitySample d = measureDensities(*space_);
        page_density_acc_ += d.pageDensity;
        line_density_acc_ += d.lineDensity;
        ++result_.densitySamples;
    }
    pump_(hierarchy);
}

void
TraceReplayer::step(cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(!done(), "(step past the end of the trace)");
    auto &memory = space_->memory();
    const TraceOp &op = trace_->ops[next_++];
    result_.virtualSeconds += op.dt;
    // Model time advances in lock-step with the trace, so adaptive
    // scheduling sees only deterministic, replayable inputs.
    if (engine_)
        engine_->modelClock().advanceSeconds(op.dt);
    switch (op.kind) {
      case OpKind::Malloc: {
        const cap::Capability c = alloc_->malloc(op.size);
        // Programs initialise allocations before use; the data
        // writes clear any stale tags left by a previous
        // occupant of recycled memory.
        memory.fill(c.base(), 0, alloc_->usableSize(c.base()));
        objects_.emplace(op.id, c);
        ++result_.allocCalls;
        pumpEngine(hierarchy);
        break;
      }
      case OpKind::Free: {
        auto it = objects_.find(op.id);
        if (it == objects_.end())
            break;
        result_.freedBytes += alloc_->usableSize(it->second.base());
        alloc_->free(it->second);
        objects_.erase(it);
        ++result_.freeCalls;
        pumpEngine(hierarchy);
        break;
      }
      case OpKind::StorePtr: {
        auto dst = objects_.find(op.dst);
        auto src = objects_.find(op.src);
        if (dst == objects_.end() || src == objects_.end())
            break;
        const uint64_t usable =
            alloc_->usableSize(dst->second.base());
        if (usable < kCapBytes)
            break;
        const uint64_t offset =
            std::min<uint64_t>(op.offset, usable - kCapBytes) &
            ~(kCapBytes - 1);
        memory.writeCap(dst->second.base() + offset, src->second);
        ++result_.ptrStores;
        deref_(1);
        break;
      }
      case OpKind::StoreData: {
        auto dst = objects_.find(op.dst);
        if (dst == objects_.end())
            break;
        const uint64_t usable =
            alloc_->usableSize(dst->second.base());
        if (usable < 8)
            break;
        const uint64_t offset =
            std::min<uint64_t>(op.offset, usable - 8) & ~7ULL;
        memory.storeU64(dst->second, dst->second.base() + offset,
                        0x5a5a5a5a5a5a5a5aULL);
        deref_(1);
        break;
      }
      case OpKind::RootPtr: {
        auto src = objects_.find(op.src);
        if (src == objects_.end())
            break;
        const uint64_t slots = space_->globals().size / kCapBytes;
        const uint64_t slot = op.offset % slots;
        memory.writeCap(space_->globals().base + slot * kCapBytes,
                        src->second);
        deref_(1);
        break;
      }
      case OpKind::SpawnTenant:
      case OpKind::RetireTenant: {
        if (!lifecycle_)
            fatal("tenant-lifecycle trace op (%s of tenant %llu) "
                  "outside a tenant manager",
                  op.kind == OpKind::SpawnTenant ? "spawn" : "retire",
                  static_cast<unsigned long long>(op.id));
        lifecycle_(op);
        break;
      }
    }
    trackPeaks();
}

void
TraceReplayer::injectFault(HeapFaultKind kind)
{
    auto &memory = space_->memory();
    switch (kind) {
      case HeapFaultKind::DoubleFree: {
        // A genuine double free: quarantine a fresh allocation, then
        // free it again — the second free trips the kQuarantine flag
        // check, exactly as a buggy program's would.
        const cap::Capability c = alloc_->malloc(64);
        alloc_->free(c);
        alloc_->free(c);
        break;
      }
      case HeapFaultKind::WildFree: {
        // A tagged capability whose base is nowhere near the heap:
        // the globals segment, which every address space has.
        const uint64_t payload =
            space_->globals().base + alloc::kChunkHeader;
        alloc_->free(space_->rootCap()
                         .setAddress(payload)
                         .setBounds(16));
        break;
      }
      case HeapFaultKind::HeaderCorruption: {
        // Smash a live chunk's size bits (flags preserved so the
        // neighbours' coalescing invariants stay intact) and free
        // it: the boundary-tag sanity check fires.
        const cap::Capability c = alloc_->malloc(64);
        const uint64_t header =
            alloc::DlAllocator::chunkOf(c.base()) + 8;
        memory.spanWriteU64(header, memory.spanReadU64(header) &
                                        alloc::kFlagMask);
        alloc_->free(c);
        break;
      }
      case HeapFaultKind::OutOfMemory:
        heapFault(HeapFaultKind::OutOfMemory,
                  "injected page-budget exhaustion at op %zu",
                  next_);
      case HeapFaultKind::CodecCorruption:
        heapFault(HeapFaultKind::CodecCorruption,
                  "injected mid-stream trace corruption at op %zu",
                  next_);
      case HeapFaultKind::SweeperFailure:
        // Organically this kind is only raised by the supervision
        // ladder's containment rung (see revoke/supervisor.hh); the
        // direct injection exists so containment coverage does not
        // depend on staging three sweeper failures first.
        heapFault(HeapFaultKind::SweeperFailure,
                  "injected background-sweeper failure at op %zu",
                  next_);
    }
    // The allocator paths above must have thrown.
    panic("fault injection of kind %s did not raise",
          heapFaultKindName(kind));
}

DriverResult
TraceReplayer::finish(cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(!finished_, "(finish called twice)");
    finished_ = true;

    // A concurrent-policy epoch may still be open: drain it so the
    // run's revocation totals are complete (multi-tenant hosts narrow
    // this to the tenant's own domain via setDrain()).
    drain_(hierarchy);

    if (result_.densitySamples > 0) {
        result_.pageDensity =
            page_density_acc_ / result_.densitySamples;
        result_.lineDensity =
            line_density_acc_ / result_.densitySamples;
    } else {
        const DensitySample d = measureDensities(*space_);
        result_.pageDensity = d.pageDensity;
        result_.lineDensity = d.lineDensity;
        result_.densitySamples = 1;
    }

    if (result_.virtualSeconds > 0) {
        result_.measuredFreeRateMiBps =
            static_cast<double>(result_.freedBytes) / MiB /
            result_.virtualSeconds;
        result_.measuredFreesPerSec =
            static_cast<double>(result_.freeCalls) /
            result_.virtualSeconds;
    }
    if (engine_)
        result_.revoker = engine_->totals();
    return result_;
}

DriverResult
TraceDriver::run(const Trace &trace, cache::Hierarchy *hierarchy)
{
    TraceReplayer replayer(*space_, *alloc_, engine_, trace);
    while (!replayer.done())
        replayer.step(hierarchy);
    return replayer.finish(hierarchy);
}

} // namespace workload
} // namespace cherivoke

#include "workload/driver.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace cherivoke {
namespace workload {

DensitySample
measureDensities(const mem::AddressSpace &space)
{
    DensitySample sample;
    const auto &memory = space.memory();
    uint64_t pages = 0, pages_with = 0;
    uint64_t lines = 0, lines_with = 0;
    for (const mem::Segment &seg : space.heapSegments()) {
        for (uint64_t p = seg.base; p < seg.end(); p += kPageBytes) {
            const mem::Page *page = memory.pageIfPresent(p);
            if (!page)
                continue; // never-touched page: not resident
            ++pages;
            lines += kPageBytes / kLineBytes;
            if (page->tagCount == 0)
                continue;
            ++pages_with;
            for (uint64_t line = p; line < p + kPageBytes;
                 line += kLineBytes) {
                const unsigned g0 = static_cast<unsigned>(
                    (line & (kPageBytes - 1)) >> kGranuleShift);
                bool any = false;
                for (unsigned i = 0; i < kCapsPerLine; ++i)
                    any |= page->granuleTag(g0 + i);
                lines_with += any ? 1 : 0;
            }
        }
    }
    if (pages > 0) {
        sample.pageDensity =
            static_cast<double>(pages_with) / pages;
        sample.lineDensity =
            static_cast<double>(lines_with) / lines;
    }
    return sample;
}

DriverResult
TraceDriver::run(const Trace &trace, cache::Hierarchy *hierarchy)
{
    DriverResult result;
    auto &memory = space_->memory();
    std::map<uint64_t, cap::Capability> objects; // trace id -> cap
    double page_density_acc = 0, line_density_acc = 0;

    auto track_peaks = [&]() {
        result.peakLiveBytes =
            std::max(result.peakLiveBytes, alloc_->liveBytes());
        result.peakQuarantineBytes = std::max(
            result.peakQuarantineBytes, alloc_->quarantinedBytes());
        result.peakFootprintBytes = std::max(
            result.peakFootprintBytes, alloc_->footprintBytes());
    };

    // Pump the engine after an allocator operation: stop-the-world
    // and incremental policies run a whole epoch when the quarantine
    // budget fills; the concurrent policy advances its open epoch by
    // one slice. Densities are sampled whenever an epoch is about to
    // open, as the paper samples its core dumps (§5.3).
    auto pump_engine = [&]() {
        if (!engine_)
            return;
        if (!engine_->epochOpen() && alloc_->needsSweep()) {
            const DensitySample d = measureDensities(*space_);
            page_density_acc += d.pageDensity;
            line_density_acc += d.lineDensity;
            ++result.densitySamples;
        }
        engine_->maybeRevoke(hierarchy);
    };

    for (const TraceOp &op : trace.ops) {
        result.virtualSeconds += op.dt;
        switch (op.kind) {
          case OpKind::Malloc: {
            const cap::Capability c = alloc_->malloc(op.size);
            // Programs initialise allocations before use; the data
            // writes clear any stale tags left by a previous
            // occupant of recycled memory.
            memory.fill(c.base(), 0, alloc_->usableSize(c.base()));
            objects.emplace(op.id, c);
            ++result.allocCalls;
            pump_engine();
            break;
          }
          case OpKind::Free: {
            auto it = objects.find(op.id);
            if (it == objects.end())
                break;
            result.freedBytes +=
                alloc_->usableSize(it->second.base());
            alloc_->free(it->second);
            objects.erase(it);
            ++result.freeCalls;
            pump_engine();
            break;
          }
          case OpKind::StorePtr: {
            auto dst = objects.find(op.dst);
            auto src = objects.find(op.src);
            if (dst == objects.end() || src == objects.end())
                break;
            const uint64_t usable =
                alloc_->usableSize(dst->second.base());
            if (usable < kCapBytes)
                break;
            const uint64_t offset =
                std::min<uint64_t>(op.offset, usable - kCapBytes) &
                ~(kCapBytes - 1);
            memory.writeCap(dst->second.base() + offset,
                            src->second);
            ++result.ptrStores;
            break;
          }
          case OpKind::StoreData: {
            auto dst = objects.find(op.dst);
            if (dst == objects.end())
                break;
            const uint64_t usable =
                alloc_->usableSize(dst->second.base());
            if (usable < 8)
                break;
            const uint64_t offset =
                std::min<uint64_t>(op.offset, usable - 8) & ~7ULL;
            memory.storeU64(dst->second, dst->second.base() + offset,
                            0x5a5a5a5a5a5a5a5aULL);
            break;
          }
          case OpKind::RootPtr: {
            auto src = objects.find(op.src);
            if (src == objects.end())
                break;
            const uint64_t slots =
                space_->globals().size / kCapBytes;
            const uint64_t slot = op.offset % slots;
            memory.writeCap(space_->globals().base + slot * kCapBytes,
                            src->second);
            break;
          }
        }
        track_peaks();
    }

    // A concurrent-policy epoch may still be open: drain it so the
    // run's revocation totals are complete.
    if (engine_ && engine_->epochOpen())
        engine_->drain(hierarchy);

    if (result.densitySamples > 0) {
        result.pageDensity =
            page_density_acc / result.densitySamples;
        result.lineDensity =
            line_density_acc / result.densitySamples;
    } else {
        const DensitySample d = measureDensities(*space_);
        result.pageDensity = d.pageDensity;
        result.lineDensity = d.lineDensity;
        result.densitySamples = 1;
    }

    if (result.virtualSeconds > 0) {
        result.measuredFreeRateMiBps =
            static_cast<double>(result.freedBytes) / MiB /
            result.virtualSeconds;
        result.measuredFreesPerSec =
            static_cast<double>(result.freeCalls) /
            result.virtualSeconds;
    }
    if (engine_)
        result.revoker = engine_->totals();
    return result;
}

} // namespace workload
} // namespace cherivoke

#include "workload/spec_profiles.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/units.hh"

namespace cherivoke {
namespace workload {

double
BenchmarkProfile::meanAllocBytes() const
{
    if (freesPerSec >= 500) {
        // Table 2 gives both rates: mean = bytes/s / frees/s.
        return freeRateMiBps * static_cast<double>(MiB) / freesPerSec;
    }
    if (freeRateMiBps >= 1.0) {
        // "~0" frees/s with real byte throughput: large buffers.
        return 1.0 * MiB;
    }
    return 4096; // barely allocates; size is irrelevant
}

const std::vector<BenchmarkProfile> &
specProfiles()
{
    // Columns 2-4 are table 2 verbatim ("~0" encoded as a small
    // nonzero rate where the byte rate implies occasional frees).
    // liveHeapMiB/baselineRuntimeSec/appDramMiBps are approximate
    // SPEC CPU2006 reference characteristics (documented estimates);
    // linePointerDensity follows §3.4's "fewer than a quarter of
    // cache lines holding pointers in many applications" with
    // per-benchmark values consistent with figure 8a's CLoadTags
    // reductions; temporalFragmentation reproduces §6.1.1.
    static const std::vector<BenchmarkProfile> profiles = {
        //  name        pages  MiB/s  frees/s   heap   run   dram   line   frag
        {"ffmpeg",      0.04, 1268.0, 44000.0,  300.0, 300.0, 6000.0, 0.02, 0.05},
        {"astar",       0.62,   24.0, 27000.0,  325.0, 500.0, 2500.0, 0.25, 0.10},
        {"bzip2",       0.00,    0.0,     0.0,  850.0, 550.0, 3500.0, 0.00, 0.00},
        {"dealII",      0.70,   40.0, 498000.0, 800.0, 470.0, 3000.0, 0.35, 0.15},
        {"gobmk",       0.54,    1.0,  1000.0,   28.0, 520.0, 1200.0, 0.20, 0.05},
        {"h264ref",     0.09,    3.0,  1000.0,   65.0, 640.0, 2200.0, 0.04, 0.02},
        {"hmmer",       0.04,   17.0, 12000.0,   60.0, 480.0, 1500.0, 0.02, 0.02},
        {"lbm",         0.00,    5.0,     2.0,  410.0, 430.0, 7000.0, 0.00, 0.00},
        {"libquantum",  0.01,    5.0,     2.0,  100.0, 450.0, 5000.0, 0.01, 0.00},
        {"mcf",         0.46,   53.0,    10.0, 1700.0, 400.0, 6500.0, 0.25, 0.05},
        {"milc",        0.03,  224.0,    20.0,  680.0, 470.0, 5500.0, 0.02, 0.02},
        {"omnetpp",     0.95,  175.0, 1027000.0, 170.0, 420.0, 6000.0, 0.55, 0.30},
        {"povray",      0.19,    1.0, 17000.0,    7.0, 300.0,  800.0, 0.08, 0.05},
        {"sjeng",       0.24,    0.1,    10.0,  180.0, 600.0, 1800.0, 0.10, 0.00},
        {"soplex",      0.23,  287.0,  2000.0,  440.0, 350.0, 5000.0, 0.12, 0.05},
        {"sphinx3",     0.18,   33.0, 30000.0,   45.0, 600.0, 2800.0, 0.08, 0.05},
        {"xalancbmk",   0.86,  371.0, 811000.0,  430.0, 280.0, 9000.0, 0.45, 0.60},
    };
    return profiles;
}

const BenchmarkProfile &
profileFor(const std::string &name)
{
    for (const auto &p : specProfiles()) {
        if (p.name == name)
            return p;
    }
    fatal("no workload profile named '%s'", name.c_str());
}

std::vector<BenchmarkProfile>
figure5Profiles()
{
    std::vector<BenchmarkProfile> out;
    for (const auto &p : specProfiles()) {
        if (p.name != "ffmpeg")
            out.push_back(p);
    }
    return out;
}

} // namespace workload
} // namespace cherivoke

/**
 * @file
 * Per-benchmark workload profiles calibrated to the paper's own
 * measurements.
 *
 * The first three numeric columns are table 2 verbatim (pages with
 * pointers, free rate, frees/s). The remaining fields are inputs the
 * paper does not tabulate but the experiments need: steady-state
 * heap size and baseline runtime (approximate SPEC CPU2006 reference
 * characteristics), baseline DRAM bandwidth (figure 10's
 * denominator), cache-line pointer density (figure 8a's CLoadTags
 * series), and a temporal-fragmentation knob (the §6.1.1 xalancbmk
 * quarantine cache effect). These are documented estimates, not
 * paper data — see DESIGN.md §2.
 */

#ifndef CHERIVOKE_WORKLOAD_SPEC_PROFILES_HH
#define CHERIVOKE_WORKLOAD_SPEC_PROFILES_HH

#include <string>
#include <vector>

namespace cherivoke {
namespace workload {

/** One benchmark's workload characteristics. */
struct BenchmarkProfile
{
    std::string name;

    /** @name Table 2 (paper data) */
    /// @{
    double pagesWithPointers = 0; //!< fraction of pages holding caps
    double freeRateMiBps = 0;     //!< MiB/s returned by free()
    double freesPerSec = 0;       //!< calls to free per second
    /// @}

    /** @name Estimated characteristics (documented inputs) */
    /// @{
    double liveHeapMiB = 64;        //!< steady-state live heap
    double baselineRuntimeSec = 500; //!< reference-input runtime
    double appDramMiBps = 2000;     //!< baseline off-core traffic
    double linePointerDensity = 0;  //!< fraction of lines with caps
    double temporalFragmentation = 0; //!< 0..1, §6.1.1 cache effect
    /// @}

    /** Mean allocation size implied by table 2 (bytes). */
    double meanAllocBytes() const;

    /** True if the benchmark ever frees enough to sweep. */
    bool allocationIntensive() const
    {
        return freeRateMiBps >= 1.0;
    }
};

/** All 17 profiles (16 SPEC + ffmpeg), table 2 order. */
const std::vector<BenchmarkProfile> &specProfiles();

/** Profile lookup by name; throws FatalError if unknown. */
const BenchmarkProfile &profileFor(const std::string &name);

/** The subset with a figure 5 published row (SPEC only, no ffmpeg). */
std::vector<BenchmarkProfile> figure5Profiles();

} // namespace workload
} // namespace cherivoke

#endif // CHERIVOKE_WORKLOAD_SPEC_PROFILES_HH

/**
 * @file
 * The trace driver: replays a workload trace against the CHERIvoke
 * allocator inside the simulated machine, running revocation epochs
 * as the quarantine fills, and measuring the quantities the paper's
 * tables and figures report (free rates, pointer densities at page
 * and line granularity, sweep statistics, peak memory).
 */

#ifndef CHERIVOKE_WORKLOAD_DRIVER_HH
#define CHERIVOKE_WORKLOAD_DRIVER_HH

#include <cstdint>

#include "alloc/cherivoke_alloc.hh"
#include "cache/hierarchy.hh"
#include "revoke/revocation_engine.hh"
#include "workload/trace.hh"

namespace cherivoke {
namespace workload {

/** Densities of capability-bearing memory in the heap. */
struct DensitySample
{
    double pageDensity = 0; //!< fraction of heap pages with >=1 tag
    double lineDensity = 0; //!< fraction of heap lines with >=1 tag
};

/** Measure current heap pointer densities (table 2 / figure 8a). */
DensitySample measureDensities(const mem::AddressSpace &space);

/** Aggregate results of one trace replay. */
struct DriverResult
{
    double virtualSeconds = 0;
    uint64_t allocCalls = 0;
    uint64_t freeCalls = 0;
    uint64_t freedBytes = 0;
    uint64_t ptrStores = 0;

    uint64_t peakLiveBytes = 0;
    uint64_t peakQuarantineBytes = 0;
    uint64_t peakFootprintBytes = 0;

    /** Rates over virtual time (table 2 columns, at trace scale). */
    double measuredFreeRateMiBps = 0;
    double measuredFreesPerSec = 0;

    /** Densities averaged over sweep-time samples (like the paper's
     *  core dumps, §5.3); falls back to an end-of-run sample. */
    double pageDensity = 0;
    double lineDensity = 0;
    uint64_t densitySamples = 0;

    revoke::EngineTotals revoker;
};

/** Replays traces against an allocator + revocation engine. */
class TraceDriver
{
  public:
    /**
     * @param engine nullable: without it, frees quarantine but no
     *        sweeps run (the fig. 6 "quarantine only" configuration)
     */
    TraceDriver(mem::AddressSpace &space,
                alloc::CherivokeAllocator &allocator,
                revoke::RevocationEngine *engine)
        : space_(&space), alloc_(&allocator), engine_(engine)
    {}

    /** Replay @p trace; optionally model traffic via @p hierarchy.
     *  Pumps the engine after every allocator operation so that
     *  concurrent-policy epochs interleave with trace progress; any
     *  epoch still open at end of trace is drained. */
    DriverResult run(const Trace &trace,
                     cache::Hierarchy *hierarchy = nullptr);

  private:
    mem::AddressSpace *space_;
    alloc::CherivokeAllocator *alloc_;
    revoke::RevocationEngine *engine_;
};

} // namespace workload
} // namespace cherivoke

#endif // CHERIVOKE_WORKLOAD_DRIVER_HH

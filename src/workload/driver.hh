/**
 * @file
 * The trace driver: replays a workload trace against the CHERIvoke
 * allocator inside the simulated machine, running revocation epochs
 * as the quarantine fills, and measuring the quantities the paper's
 * tables and figures report (free rates, pointer densities at page
 * and line granularity, sweep statistics, peak memory).
 */

#ifndef CHERIVOKE_WORKLOAD_DRIVER_HH
#define CHERIVOKE_WORKLOAD_DRIVER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "cache/hierarchy.hh"
#include "revoke/revocation_engine.hh"
#include "support/fault.hh"
#include "workload/trace.hh"

namespace cherivoke {
namespace workload {

/** Densities of capability-bearing memory in the heap. */
struct DensitySample
{
    double pageDensity = 0; //!< fraction of heap pages with >=1 tag
    double lineDensity = 0; //!< fraction of heap lines with >=1 tag
};

/** Measure current heap pointer densities (table 2 / figure 8a). */
DensitySample measureDensities(const mem::AddressSpace &space);

/** Aggregate results of one trace replay. */
struct DriverResult
{
    double virtualSeconds = 0;
    uint64_t allocCalls = 0;
    uint64_t freeCalls = 0;
    uint64_t freedBytes = 0;
    uint64_t ptrStores = 0;

    uint64_t peakLiveBytes = 0;
    uint64_t peakQuarantineBytes = 0;
    uint64_t peakFootprintBytes = 0;
    /** Most allocations simultaneously live (PICASSO-style scale). */
    uint64_t peakLiveAllocs = 0;

    /** Rates over virtual time (table 2 columns, at trace scale). */
    double measuredFreeRateMiBps = 0;
    double measuredFreesPerSec = 0;

    /** Densities averaged over sweep-time samples (like the paper's
     *  core dumps, §5.3); falls back to an end-of-run sample. */
    double pageDensity = 0;
    double lineDensity = 0;
    uint64_t densitySamples = 0;

    revoke::EngineTotals revoker;
};

/**
 * One-op-at-a-time trace replay: the stepping core TraceDriver::run
 * is built on, exposed so the tenant scheduler can interleave many
 * tenants' streams op by op through one shared revocation engine.
 *
 * Each step applies the next trace op to the allocator/memory and,
 * after Malloc/Free, samples pointer densities when an epoch is
 * about to open and pumps the engine (the default pump calls
 * engine->maybeRevoke(); a multi-tenant host installs its own pump
 * to select the engine domain and apply its revocation scope first).
 */
class TraceReplayer
{
  public:
    using PumpFn = std::function<void(cache::Hierarchy *)>;
    using DrainFn = std::function<void(cache::Hierarchy *)>;
    using LifecycleFn = std::function<void(const TraceOp &)>;
    using DerefFn = std::function<void(uint64_t)>;

    /**
     * @param engine nullable: without it, frees quarantine but no
     *        sweeps run (the fig. 6 "quarantine only" configuration)
     */
    TraceReplayer(mem::AddressSpace &space,
                  alloc::CherivokeAllocator &allocator,
                  revoke::RevocationEngine *engine,
                  const Trace &trace);

    /** Replace the engine pump (multi-tenant scheduling hook). */
    void setPump(PumpFn pump) { pump_ = std::move(pump); }

    /**
     * Replace the pointer-dereference hook, called with a use count
     * for every applied pointer op (StorePtr/StoreData/RootPtr). The
     * default reports to the engine's active domain
     * (RevocationEngine::notePointerUse) so per-use-check backends
     * account their check cost; a multi-tenant host narrows it to
     * this tenant's own domain.
     */
    void setDeref(DerefFn deref) { deref_ = std::move(deref); }

    /**
     * Replace finish()'s end-of-replay drain. The default drains
     * whatever epoch the engine has open; a multi-tenant host narrows
     * it to this tenant's own domain so finishing (or retiring) one
     * tenant never completes a neighbour's in-flight epoch.
     */
    void setDrain(DrainFn drain) { drain_ = std::move(drain); }

    /**
     * Receive SpawnTenant/RetireTenant ops (a TenantManager resolves
     * them against its definition registry). Without a handler a
     * lifecycle op is fatal: it cannot mean anything to a
     * single-process replay.
     */
    void setLifecycle(LifecycleFn fn) { lifecycle_ = std::move(fn); }

    /** All ops applied (finish() may still be outstanding). */
    bool done() const { return next_ >= trace_->ops.size(); }
    size_t opsApplied() const { return next_; }
    size_t opsTotal() const { return trace_->ops.size(); }

    /** Currently live (not yet freed) trace allocations. */
    uint64_t liveObjects() const { return objects_.size(); }

    /** Apply the next op; must not be called once done(). */
    void step(cache::Hierarchy *hierarchy = nullptr);

    /**
     * Drain any open epoch and finalise rates and densities.
     * Callable once, after done(); the replayer is spent afterwards.
     */
    DriverResult finish(cache::Hierarchy *hierarchy = nullptr);

    /** Results accumulated so far (peaks, counters; not yet rates). */
    const DriverResult &partial() const { return result_; }

    /**
     * Record a revocation-epoch boundary at the current replay
     * position (called from the engine's epoch-open hook, so the
     * recorded value is the number of ops applied when the epoch's
     * revocation set froze). The multi-threaded mutator front-end
     * replays these as flush+drain barriers.
     */
    void noteEpochBoundary() { epoch_ops_.push_back(next_); }

    /** Op indices at which revocation epochs opened, in replay
     *  order (non-decreasing; duplicates possible when an epoch
     *  opens twice at one op, e.g. drain-then-revoke). */
    const std::vector<uint64_t> &epochOpenOps() const
    {
        return epoch_ops_;
    }

    /**
     * Chaos hook: perform a real faulting operation of @p kind
     * against this replay's allocator (a genuine double free, a
     * free of an address outside the heap, a free through a smashed
     * boundary tag...), so the planned injection exercises exactly
     * the detection path an organic fault would. Always throws
     * HeapFault; never advances the trace. Deterministic: the same
     * replay state produces the same faulting operation.
     */
    [[noreturn]] void injectFault(HeapFaultKind kind);

  private:
    void pumpEngine(cache::Hierarchy *hierarchy);
    void trackPeaks();

    mem::AddressSpace *space_;
    alloc::CherivokeAllocator *alloc_;
    revoke::RevocationEngine *engine_;
    const Trace *trace_;
    PumpFn pump_;
    DrainFn drain_;
    LifecycleFn lifecycle_;
    DerefFn deref_;

    /** trace id -> cap. Hash map, never iterated: the mutator pays
     *  O(1) per op where the former ordered map paid O(log n) at
     *  millions of live objects, and no statistic can depend on
     *  iteration order. */
    std::unordered_map<uint64_t, cap::Capability> objects_;
    DriverResult result_;
    double page_density_acc_ = 0;
    double line_density_acc_ = 0;
    size_t next_ = 0;
    bool finished_ = false;
    /** Replay positions (ops applied) of every epoch open. */
    std::vector<uint64_t> epoch_ops_;
};

/** Replays traces against an allocator + revocation engine. */
class TraceDriver
{
  public:
    /**
     * @param engine nullable: without it, frees quarantine but no
     *        sweeps run (the fig. 6 "quarantine only" configuration)
     */
    TraceDriver(mem::AddressSpace &space,
                alloc::CherivokeAllocator &allocator,
                revoke::RevocationEngine *engine)
        : space_(&space), alloc_(&allocator), engine_(engine)
    {}

    /** Replay @p trace; optionally model traffic via @p hierarchy.
     *  Pumps the engine after every allocator operation so that
     *  concurrent-policy epochs interleave with trace progress; any
     *  epoch still open at end of trace is drained. */
    DriverResult run(const Trace &trace,
                     cache::Hierarchy *hierarchy = nullptr);

  private:
    mem::AddressSpace *space_;
    alloc::CherivokeAllocator *alloc_;
    revoke::RevocationEngine *engine_;
};

} // namespace workload
} // namespace cherivoke

#endif // CHERIVOKE_WORKLOAD_DRIVER_HH

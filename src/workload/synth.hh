/**
 * @file
 * Synthetic workload generation calibrated to table 2.
 *
 * The paper shows (§6.1.3) that CHERIvoke's cost is a function of
 * free rate, pointer density, and quarantine fraction — exactly the
 * quantities table 2 tabulates per benchmark. The synthesiser
 * produces a trace whose measured free rate (MiB/s), free call rate,
 * and page/line pointer densities converge to a profile's targets, at
 * a configurable scale (heap and rates scaled together, which leaves
 * overhead fractions invariant — see sim/experiment.hh).
 */

#ifndef CHERIVOKE_WORKLOAD_SYNTH_HH
#define CHERIVOKE_WORKLOAD_SYNTH_HH

#include "workload/spec_profiles.hh"
#include "workload/trace.hh"

namespace cherivoke {
namespace workload {

/** Synthesis parameters. */
struct SynthConfig
{
    /** Heap-and-rate scale factor (1/64 of reference by default). */
    double scale = 1.0 / 64;
    /** Virtual seconds of steady-state execution to generate. */
    double durationSec = 1.5;
    uint64_t seed = 1;
    /** Floor for the scaled live-heap target. */
    uint64_t minLiveBytes = 512 * 1024;
};

/** Generate a trace matching @p profile at the configured scale. */
Trace synthesize(const BenchmarkProfile &profile,
                 const SynthConfig &config = SynthConfig{});

} // namespace workload
} // namespace cherivoke

#endif // CHERIVOKE_WORKLOAD_SYNTH_HH

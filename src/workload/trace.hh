/**
 * @file
 * Allocation traces: the workload representation the synthesiser
 * emits and the driver replays. Traces are allocator-independent —
 * allocations are named by id, not address — so the same trace can
 * drive CHERIvoke, plain dlmalloc, or a baseline technique.
 */

#ifndef CHERIVOKE_WORKLOAD_TRACE_HH
#define CHERIVOKE_WORKLOAD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace cherivoke {
namespace workload {

/** Trace operation kinds. */
enum class OpKind : uint8_t
{
    Malloc,    //!< allocate `size` bytes as allocation `id`
    Free,      //!< free allocation `id`
    StorePtr,  //!< store a capability to `src` at `dst`+`offset`
    StoreData, //!< store plain data at `dst`+`offset` (kills a tag)
    RootPtr,   //!< store a capability to `src` in global root slot
               //!< `offset` (models pointers in globals/stack)

    /** @name Tenant-lifecycle control ops (trace-codec v2)
     *  Replayable only under a tenant::TenantManager, which resolves
     *  `id` against its registered tenant definitions / live tenants
     *  (unknown ids are fatal). A plain TraceDriver replay of a
     *  lifecycle op is a configuration error. */
    /// @{
    SpawnTenant, //!< activate registered tenant definition `id`
    RetireTenant, //!< tear down live tenant `id`
    /// @}
};

/** Largest valid OpKind value (range checks in codecs). */
constexpr uint8_t kMaxOpKind =
    static_cast<uint8_t>(OpKind::RetireTenant);

/** True for the tenant-lifecycle control ops. */
constexpr bool
isLifecycleOp(OpKind kind)
{
    return kind == OpKind::SpawnTenant || kind == OpKind::RetireTenant;
}

/** One trace operation. */
struct TraceOp
{
    OpKind kind = OpKind::Malloc;
    uint64_t id = 0;     //!< Malloc/Free: allocation id
    uint64_t size = 0;   //!< Malloc: requested bytes
    uint64_t src = 0;    //!< StorePtr/RootPtr: source allocation id
    uint64_t dst = 0;    //!< StorePtr/StoreData: dest allocation id
    uint64_t offset = 0; //!< byte offset within dest / root slot no.
    double dt = 0;       //!< virtual seconds since the previous op
};

/** A full trace plus its metadata. */
struct Trace
{
    std::vector<TraceOp> ops;

    /** Sum of all dt fields: the virtual duration. */
    double virtualSeconds() const;

    /** True when any op is a tenant-lifecycle control op (such a
     *  trace needs the v2 binary encoding and a TenantManager). */
    bool hasLifecycleOps() const;

    /** Plain-text serialisation (one op per line). */
    void save(std::ostream &os) const;
    static Trace load(std::istream &is);
};

} // namespace workload
} // namespace cherivoke

#endif // CHERIVOKE_WORKLOAD_TRACE_HH

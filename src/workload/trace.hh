/**
 * @file
 * Allocation traces: the workload representation the synthesiser
 * emits and the driver replays. Traces are allocator-independent —
 * allocations are named by id, not address — so the same trace can
 * drive CHERIvoke, plain dlmalloc, or a baseline technique.
 */

#ifndef CHERIVOKE_WORKLOAD_TRACE_HH
#define CHERIVOKE_WORKLOAD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace cherivoke {
namespace workload {

/** Trace operation kinds. */
enum class OpKind : uint8_t
{
    Malloc,    //!< allocate `size` bytes as allocation `id`
    Free,      //!< free allocation `id`
    StorePtr,  //!< store a capability to `src` at `dst`+`offset`
    StoreData, //!< store plain data at `dst`+`offset` (kills a tag)
    RootPtr,   //!< store a capability to `src` in global root slot
               //!< `offset` (models pointers in globals/stack)
};

/** One trace operation. */
struct TraceOp
{
    OpKind kind = OpKind::Malloc;
    uint64_t id = 0;     //!< Malloc/Free: allocation id
    uint64_t size = 0;   //!< Malloc: requested bytes
    uint64_t src = 0;    //!< StorePtr/RootPtr: source allocation id
    uint64_t dst = 0;    //!< StorePtr/StoreData: dest allocation id
    uint64_t offset = 0; //!< byte offset within dest / root slot no.
    double dt = 0;       //!< virtual seconds since the previous op
};

/** A full trace plus its metadata. */
struct Trace
{
    std::vector<TraceOp> ops;

    /** Sum of all dt fields: the virtual duration. */
    double virtualSeconds() const;

    /** Plain-text serialisation (one op per line). */
    void save(std::ostream &os) const;
    static Trace load(std::istream &is);
};

} // namespace workload
} // namespace cherivoke

#endif // CHERIVOKE_WORKLOAD_TRACE_HH

/**
 * @file
 * The multi-threaded mutator front-end: fan one tenant's trace out
 * across M real mutator threads with snmalloc-style message-passing
 * deallocation, while keeping every modelled statistic bit-identical
 * to a single-threaded replay.
 *
 * Partitioning is deterministic: allocation `id` is *owned* by
 * thread `id % M` (the thread that executes its Malloc), a Free of
 * `id` is *executed* by thread `opIndex % M`, and pointer-store ops
 * run on the destination chunk's owner. When a Free's executor is
 * not the owner it becomes a remote free: the executor batches it
 * (CHERIVOKE_REMOTE_BATCH entries per FreeBatch) onto the owner's
 * lock-free MPSC RemoteFreeQueue, and the owner drains its inbox
 * into its quarantine tallies on its malloc slow path, at epoch
 * boundaries, and at teardown.
 *
 * Determinism model (the same record/replay discipline PR 1 used
 * for threaded sweep traffic): the threads genuinely race — real
 * std::threads, real lock-free queues, real barriers — but the race
 * only decides *interleaving*, never modelled allocator state. Each
 * thread records its own stat log during the race; the logs are
 * merged in canonical thread order (0..M-1) afterwards, and every
 * merged field is a pure function of the trace + config:
 *
 *  - send-side counts (remote frees, batch flushes) follow from the
 *    deterministic partition and the thread-local flush points;
 *  - receive-side *totals* equal the send-side totals, enforced by
 *    the epoch/teardown drain contract below;
 *  - owned-live bytes per thread are sampled only at epoch barriers
 *    and teardown, where the queues are provably empty.
 *
 * Per-drain inbox depths and wall-clock times are genuinely racy and
 * are reported outside the deterministic fingerprint.
 *
 * Epoch/drain contract: the serial (modelled) replay records the op
 * indices at which revocation epochs opened
 * (workload::TraceReplayer::epochOpenOps, fed by the engine's
 * epoch-open hook). At each such boundary every thread flushes its
 * outgoing batches, all threads rendezvous at a barrier, every owner
 * drains its inbox to empty (asserted exactly, via the queue's
 * enqueue/dequeue counters), and only then does any thread proceed —
 * so no remote free can be in flight while a revocation set is
 * frozen, the invariant a background sweeper will rely on.
 *
 * The allocator itself is driven by the serial replay in trace
 * order, which is why the modelled statistics of an M-thread run are
 * bit-identical to a 1-thread run — gated in tests and in
 * bench/mutator_contention.
 */

#ifndef CHERIVOKE_TENANT_MUTATOR_THREADS_HH
#define CHERIVOKE_TENANT_MUTATOR_THREADS_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "tenant/remote_queue.hh"
#include "workload/trace.hh"

namespace cherivoke {
namespace tenant {

/** Mutator front-end knobs (CHERIVOKE_MUTATOR_THREADS /
 *  CHERIVOKE_REMOTE_BATCH). */
struct MutatorConfig
{
    /** Mutator threads per tenant (1 = the classic front-end: every
     *  free is local, no message traffic). */
    unsigned threads = 1;
    /** Remote frees per FreeBatch message. */
    unsigned remoteBatch = 32;
};

/** Owning thread of allocation @p id under @p threads mutators. */
constexpr unsigned
mutatorOwnerOf(uint64_t id, unsigned threads)
{
    return static_cast<unsigned>(id % threads);
}

/** Executing thread of op @p op at trace position @p index. */
unsigned mutatorExecutorOf(const workload::TraceOp &op,
                           uint64_t index, unsigned threads);

/** One work item of a thread's race schedule. */
struct RaceItem
{
    enum class Kind : uint8_t
    {
        Op,        //!< execute trace op `index`
        EpochMark, //!< epoch boundary: flush + barrier + full drain
    };

    Kind kind = Kind::Op;
    workload::OpKind op = workload::OpKind::Malloc;
    uint64_t index = 0; //!< global trace op index (or boundary)
    uint64_t id = 0;
    uint64_t bytes = 0;  //!< malloc size / effective-free bytes
    unsigned owner = 0;  //!< owning thread of `id` (Malloc/Free)
    bool effective = false; //!< op changes modelled allocator state
};

/**
 * The deterministic fan-out of one trace prefix: per-thread work
 * lists in trace-index order, every thread's list carrying the same
 * epoch marks. Built serially; a pure function of its inputs.
 */
struct RacePlan
{
    MutatorConfig config;
    uint64_t opsPlanned = 0;       //!< trace ops covered (prefix)
    uint64_t effectiveMallocs = 0; //!< mallocs that created a chunk
    uint64_t effectiveFrees = 0;   //!< frees of a live chunk
    uint64_t remoteFrees = 0;      //!< effective frees, executor != owner
    uint64_t epochMarks = 0;       //!< deduplicated epoch boundaries
    std::vector<std::vector<RaceItem>> perThread;
};

/**
 * Partition @p trace ops [0, opsLimit) across config.threads mutator
 * threads, mirroring the serial replay's liveness semantics (a Free
 * of a dead id and a Malloc of a live id are executed but
 * ineffective) and interleaving @p epoch_ops boundaries into every
 * thread's schedule.
 */
RacePlan planMutatorRace(
    const workload::Trace &trace, size_t opsLimit,
    const MutatorConfig &config,
    const std::vector<uint64_t> &epoch_ops = {});

/** One mutator thread's merged race log. All fields before wallSec
 *  are deterministic; wallSec and maxBatchesPerDrain report the real
 *  race and are excluded from the fingerprint. */
struct MutatorThreadStats
{
    unsigned thread = 0;
    uint64_t ops = 0;     //!< trace ops this thread executed
    uint64_t mallocs = 0; //!< Malloc ops executed (owner side)
    uint64_t localFrees = 0;
    uint64_t remoteSent = 0;     //!< frees sent to other owners
    uint64_t remoteApplied = 0;  //!< drained frees applied as owner
    uint64_t batchesSent = 0;
    uint64_t batchesDrained = 0;
    uint64_t drains = 0;       //!< inbox drain passes
    uint64_t epochFlushes = 0; //!< epoch barriers participated in
    uint64_t quarantinedChunks = 0; //!< owned chunks quarantined
    uint64_t quarantinedBytes = 0;
    uint64_t ownedLiveBytesEnd = 0;
    /** Owned live bytes at each epoch barrier (queues drained). */
    std::vector<uint64_t> ownedLiveBytesAtEpoch;

    /** @name Reporting only (racy, outside the fingerprint) */
    /// @{
    uint64_t maxBatchesPerDrain = 0;
    double wallSec = 0;
    /// @}
};

/** Everything one mutator race produces, merged in canonical thread
 *  order. */
struct MutatorRaceResult
{
    MutatorConfig config;
    uint64_t opsExecuted = 0;
    uint64_t effectiveMallocs = 0;
    uint64_t effectiveFrees = 0;
    uint64_t localFrees = 0;
    uint64_t remoteFrees = 0;
    uint64_t batches = 0;
    uint64_t drains = 0;
    uint64_t epochBarriers = 0;
    uint64_t quarantinedBytes = 0;
    std::vector<MutatorThreadStats> perThread;

    /** @name Reporting only (racy) */
    /// @{
    unsigned hwConcurrency = 0;
    double wallSec = 0;
    /// @}

    /** FNV-1a hash over every deterministic field in canonical
     *  order: two runs of the same plan must match bit for bit. */
    uint64_t fingerprint() const;
};

/**
 * Execute @p plan with config.threads real mutator threads (run
 * inline when threads == 1). Conservation is asserted at the end:
 * every remote free sent was received and applied, every batch
 * published was drained, and local + remote frees add up to the
 * plan's effective frees.
 */
MutatorRaceResult runMutatorRace(const RacePlan &plan);

/** Convenience: plan + run. @p opsLimit bounds the trace prefix
 *  (SIZE_MAX = whole trace). */
MutatorRaceResult runMutatorRace(
    const workload::Trace &trace, size_t opsLimit,
    const MutatorConfig &config,
    const std::vector<uint64_t> &epoch_ops = {});

} // namespace tenant
} // namespace cherivoke

#endif // CHERIVOKE_TENANT_MUTATOR_THREADS_HH

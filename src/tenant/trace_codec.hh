/**
 * @file
 * Compact binary trace format for multi-million-operation workloads.
 *
 * The text format (workload::Trace::save/load) parses at a few MiB/s,
 * which dominates wall-clock once traces reach PICASSO-scale millions
 * of live allocations. This codec stores a trace as a 32-byte header
 * followed by fixed-stride 32-byte little-endian records, so a trace
 * file can be mmap'ed (or read whole) and decoded with one bounds
 * check per record — no tokenising, no allocation per op.
 *
 * Layout (all little-endian):
 *
 *     header   byte 0   u64  magic   "CHERIVTB"
 *              byte 8   u32  version (1 = classic ops only,
 *                            2 = may contain tenant-lifecycle ops)
 *              byte 12  u32  record stride in bytes (32)
 *              byte 16  u64  op count
 *              byte 24  u64  reserved (0)
 *     record   byte 0   u8   op kind (workload::OpKind)
 *              byte 1   u8[3] zero padding
 *              byte 4   u32  aux: byte offset / root slot
 *              byte 8   u64  a:  Malloc/Free id; StorePtr/RootPtr src;
 *                                StoreData dst; Spawn/RetireTenant
 *                                tenant id
 *              byte 16  u64  b:  Malloc size; StorePtr dst
 *              byte 24  f64  dt (virtual seconds since previous op)
 *
 * Encoding is canonical: only the fields the op kind defines are
 * stored, and decode leaves the rest zero. Round-tripping a canonical
 * trace (everything workload::synthesize emits) reproduces the op
 * stream byte for byte, which is what makes binary traces a
 * deterministic-replay interchange format: record once, replay
 * anywhere, bit-identical statistics.
 *
 * Versioning: v2 adds the SpawnTenant/RetireTenant record kinds and
 * nothing else — header and record layouts are unchanged. The
 * encoder emits version 1 whenever a trace contains no lifecycle
 * ops, so every pre-lifecycle trace still round-trips to the exact
 * v1 byte image, and the decoder accepts both versions (a lifecycle
 * record inside a v1 stream is corruption and fails fast).
 */

#ifndef CHERIVOKE_TENANT_TRACE_CODEC_HH
#define CHERIVOKE_TENANT_TRACE_CODEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace cherivoke {
namespace tenant {

/** "CHERIVTB" read as a little-endian u64. */
constexpr uint64_t kTraceMagic = 0x4254564952454843ULL;
/** Classic (pre-lifecycle) record set. */
constexpr uint32_t kTraceVersionClassic = 1;
/** Adds SpawnTenant/RetireTenant records; layout unchanged. */
constexpr uint32_t kTraceVersionLifecycle = 2;
/** Newest version this codec writes. */
constexpr uint32_t kTraceVersion = kTraceVersionLifecycle;
constexpr size_t kTraceHeaderBytes = 32;
constexpr size_t kTraceRecordBytes = 32;

/** Exact encoded size of @p trace in bytes. */
size_t encodedTraceBytes(const workload::Trace &trace);

/** Serialise @p trace to the binary format — version 1 when it
 *  contains no lifecycle ops (so pre-lifecycle traces keep their
 *  exact v1 byte image), version 2 otherwise. Throws FatalError when
 *  a field overflows its encoding (offset or root slot >= 2^32). */
std::vector<uint8_t> encodeTrace(const workload::Trace &trace);

/** Decode a binary trace from an in-memory image (for example an
 *  mmap'ed file). Accepts versions 1 and 2. Throws FatalError on bad
 *  magic, version, stride, truncation, an unknown op kind, or a
 *  lifecycle record inside a v1 stream. */
workload::Trace decodeTrace(const uint8_t *data, size_t size);
workload::Trace decodeTrace(const std::vector<uint8_t> &bytes);

/** True when @p data begins with the binary trace magic. */
bool isBinaryTrace(const uint8_t *data, size_t size);

/** Header version of a binary trace image — sniffing only, no
 *  validation beyond the magic. @return 0 when @p data is not a
 *  binary trace (e.g. the text format). */
uint32_t traceVersion(const uint8_t *data, size_t size);

/** Write @p trace to @p path in the binary format. */
void saveTraceFile(const std::string &path,
                   const workload::Trace &trace);

/** Load a trace file: binary when the magic matches, otherwise the
 *  text format (so existing .trace files keep working). */
workload::Trace loadTraceFile(const std::string &path);

} // namespace tenant
} // namespace cherivoke

#endif // CHERIVOKE_TENANT_TRACE_CODEC_HH

/**
 * @file
 * The multi-tenant workload host: N isolated CheriABI process images
 * — each with its own address-space region, CHERIvoke allocator, and
 * quarantine — consolidated onto ONE shared mem::TaggedMemory, one
 * optional cache hierarchy, and one shared revoke::RevocationEngine,
 * so revocation work done for one tenant genuinely contends with the
 * others (the consolidation regime CHERIvoke's §6 sweep-cost model
 * says hits first as heap size and free rate aggregate).
 *
 * Ownership:
 *
 *     TenantManager
 *       ├── mem::TaggedMemory            (shared physical image)
 *       ├── revoke::RevocationEngine     (one engine, one domain per
 *       │                                 tenant)
 *       └── Tenant[i]
 *             ├── mem::AddressSpace      (layout shifted by
 *             │                           i * kTenantStride, bound to
 *             │                           the shared memory)
 *             ├── alloc::CherivokeAllocator (+ its quarantine and
 *             │                           shadow map over the shared
 *             │                           shadow region)
 *             └── workload::Trace        (the tenant's op stream)
 *
 * run() interleaves the tenants' traces op-by-op under a smooth
 * weighted round-robin TenantScheduler and pumps the shared engine
 * after every allocator operation. Revocation triggers under two
 * scopes: PerTenant (only the pressured tenant's region is swept —
 * sound because tenants are isolated, and exactly the per-region
 * sweep scoping PoisonCap-style hierarchical schedules assume) or
 * Global (any tenant hitting its budget drains every tenant's
 * quarantine in one pause, the worst-case consolidation stall).
 *
 * Everything is deterministic: same tenant configs + same traces →
 * bit-identical per-tenant and aggregate statistics. A 1-tenant
 * manager is op-for-op identical to the classic single-process
 * workload::TraceDriver pipeline (tenant 0's layout shift is zero).
 */

#ifndef CHERIVOKE_TENANT_TENANT_MANAGER_HH
#define CHERIVOKE_TENANT_TENANT_MANAGER_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/addr_space.hh"
#include "revoke/revocation_engine.hh"
#include "stats/summary.hh"
#include "tenant/scheduler.hh"
#include "workload/driver.hh"

namespace cherivoke {
namespace tenant {

/** What a quarantine-budget trigger sweeps. */
enum class RevocationScope
{
    PerTenant, //!< only the pressured tenant's region
    Global,    //!< every tenant's quarantine, one pause
};

const char *scopeName(RevocationScope scope);
bool parseScope(const std::string &name, RevocationScope &out);

/**
 * Address-space stride between tenants: each tenant's segment bases
 * are the single-process bases shifted up by index * kTenantStride,
 * so tenant 0 occupies exactly the classic layout. 2 GiB covers the
 * full classic image (globals + heap + stack end below 0x8000'0000)
 * and keeps 512 tenants under the shadow region base.
 */
constexpr uint64_t kTenantStride = 0x8000'0000ULL;
constexpr size_t kMaxTenants = mem::kShadowBase / kTenantStride;

/** Segment layout of tenant @p index (fatal when index too large). */
mem::AddressSpace::Layout layoutForTenant(size_t index);

/** Per-tenant knobs. */
struct TenantConfig
{
    std::string name;
    /** Scheduler share: ops per rotation relative to other tenants. */
    double weight = 1.0;
    alloc::CherivokeConfig alloc{};
    uint64_t globalsBytes = 512 * KiB;
    uint64_t stackBytes = 512 * KiB;
};

/** One hosted tenant: its region, allocator, and trace. */
class Tenant
{
  public:
    Tenant(size_t index, const TenantConfig &config,
           mem::TaggedMemory &shared, workload::Trace trace);

    size_t index() const { return index_; }
    const std::string &name() const { return config_.name; }
    const TenantConfig &config() const { return config_; }
    mem::AddressSpace &space() { return space_; }
    alloc::CherivokeAllocator &allocator() { return allocator_; }
    const workload::Trace &trace() const { return trace_; }

  private:
    size_t index_;
    TenantConfig config_;
    workload::Trace trace_;
    mem::AddressSpace space_;
    alloc::CherivokeAllocator allocator_;
};

/** One tenant's replay outcome. */
struct TenantResult
{
    std::string name;
    size_t index = 0;
    double weight = 1.0;
    /** Per-tenant driver statistics; .revoker holds this tenant's
     *  domain totals, not the engine-wide aggregate. */
    workload::DriverResult run;
};

/** Everything one multi-tenant replay produces. */
struct MultiTenantResult
{
    std::vector<TenantResult> tenants;

    /** Engine-wide revocation totals (sum over all tenants). */
    revoke::EngineTotals engine;

    /** @name Aggregate mutator counters */
    /// @{
    uint64_t totalOps = 0;
    uint64_t allocCalls = 0;
    uint64_t freeCalls = 0;
    uint64_t freedBytes = 0;
    uint64_t ptrStores = 0;
    /// @}

    /** @name Aggregate peaks across the consolidated image.
     *  Live-allocation count is tracked exactly (updated every op);
     *  byte aggregates are sampled every kAggregateSampleOps ops,
     *  which is deterministic and tight at these op rates. */
    /// @{
    uint64_t peakAggLiveAllocs = 0;
    uint64_t peakAggLiveBytes = 0;
    uint64_t peakAggQuarantineBytes = 0;
    uint64_t peakAggFootprintBytes = 0;
    /// @}

    /** Longest per-tenant virtual duration (tenants run
     *  concurrently, so wall-clock-like time is the max). */
    double virtualSeconds = 0;

    /** @name Per-tenant distributions (one sample per tenant) */
    /// @{
    stats::Summary tenantEpochs;
    stats::Summary tenantCapsRevoked;
    stats::Summary tenantPagesSwept;
    stats::Summary tenantPeakLiveAllocs;
    /// @}
};

/** Manager-wide knobs. */
struct TenantManagerConfig
{
    revoke::EngineConfig engine{};
    RevocationScope scope = RevocationScope::PerTenant;
};

/** Aggregate-byte-peak sampling period, in scheduler steps. */
constexpr uint64_t kAggregateSampleOps = 32;

/** Hosts tenants and replays their traces against shared state. */
class TenantManager
{
  public:
    explicit TenantManager(
        TenantManagerConfig config = TenantManagerConfig{});

    /**
     * Add a tenant and register it as a domain of the shared engine
     * (created on first add). Tenants must all be added before run().
     * @return the tenant's index
     */
    size_t addTenant(const TenantConfig &config,
                     workload::Trace trace);

    size_t tenantCount() const { return tenants_.size(); }
    Tenant &tenant(size_t index) { return *tenants_.at(index); }
    mem::TaggedMemory &memory() { return memory_; }
    const TenantManagerConfig &config() const { return config_; }

    /** The shared engine; valid once a tenant has been added. */
    revoke::RevocationEngine &engine() { return *engine_; }

    /**
     * Interleave every tenant's trace to completion under the
     * weighted scheduler, pumping the shared engine per operation.
     * Callable once. @param hierarchy optional shared cache model
     */
    MultiTenantResult run(cache::Hierarchy *hierarchy = nullptr);

  private:
    void pumpFor(size_t index, cache::Hierarchy *hierarchy);

    TenantManagerConfig config_;
    mem::TaggedMemory memory_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    std::unique_ptr<revoke::RevocationEngine> engine_;
    bool ran_ = false;
};

} // namespace tenant
} // namespace cherivoke

#endif // CHERIVOKE_TENANT_TENANT_MANAGER_HH

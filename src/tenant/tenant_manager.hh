/**
 * @file
 * The multi-tenant workload host: N isolated CheriABI process images
 * — each with its own address-space region, CHERIvoke allocator, and
 * quarantine — consolidated onto ONE shared mem::TaggedMemory, one
 * optional cache hierarchy, and one shared revoke::RevocationEngine,
 * so revocation work done for one tenant genuinely contends with the
 * others (the consolidation regime CHERIvoke's §6 sweep-cost model
 * says hits first as heap size and free rate aggregate).
 *
 * Ownership:
 *
 *     TenantManager
 *       ├── mem::TaggedMemory            (shared physical image)
 *       ├── revoke::RevocationEngine     (one engine, one domain per
 *       │                                 tenant slot)
 *       └── Tenant[slot]
 *             ├── mem::AddressSpace      (layout shifted by
 *             │                           slot * kTenantStride, bound
 *             │                           to the shared memory)
 *             ├── alloc::CherivokeAllocator (+ its quarantine and
 *             │                           shadow map over the shared
 *             │                           shadow region)
 *             └── workload::Trace        (the tenant's op stream)
 *
 * run() interleaves the tenants' traces op-by-op under a smooth
 * weighted round-robin TenantScheduler and pumps the shared engine
 * after every allocator operation. Revocation triggers under two
 * scopes: PerTenant (only the pressured tenant's region is swept —
 * sound because tenants are isolated, and exactly the per-region
 * sweep scoping PoisonCap-style hierarchical schedules assume) or
 * Global (any tenant hitting its budget drains every tenant's
 * quarantine in one pause, the worst-case consolidation stall).
 * Tenants are heterogeneous: each TenantConfig may carry its own
 * revocation policy, so one tenant runs concurrent revocation while
 * a neighbour stops the world on the same engine (arbitration lives
 * in the engine: the open epoch's owner wins).
 *
 * Tenants also come and go mid-run. defineTenant() registers a
 * spawnable definition; a SpawnTenant trace op (or a direct
 * spawnTenant() call between runs) activates it in the lowest free
 * 2 GiB slot — reusing a retired tenant's slot when one is free —
 * and a RetireTenant op tears a live tenant down: its domain's open
 * epoch is drained, its partial results are captured, its PTEs
 * (image + shadow window) are unmapped, and every backing page of
 * its slot is released, so the next occupant of the slot observes
 * exactly what a fresh slot shows — zero data, zero tags, zero
 * shadow bytes, nothing resident.
 *
 * The manager is also the process's fault-containment boundary: a
 * HeapFault raised while a tenant steps (a double free in its trace,
 * a smashed boundary tag, an injected chaos fault) retires exactly
 * that tenant through the standard teardown path and the run
 * continues; under per-tenant scope every surviving tenant's
 * modelled statistics are bit-identical to a run where the faulty
 * tenant's trace simply ended at its fault point. A soft page
 * budget on the shared memory adds memory-pressure degradation: the
 * escalation ladder first force-revokes the pressured tenant
 * (flushing its quarantine) and releases cold heap pages, then —
 * after a backoff window — reclaims globally, and OOM-kills the
 * pressured tenant only as the last resort.
 *
 * Everything is deterministic: same tenant configs + same traces →
 * bit-identical per-tenant and aggregate statistics (lifecycle
 * wall-clock measurements excepted — they are reporting, not
 * model state). A 1-tenant manager is op-for-op identical to the
 * classic single-process workload::TraceDriver pipeline (tenant 0's
 * layout shift is zero).
 */

#ifndef CHERIVOKE_TENANT_TENANT_MANAGER_HH
#define CHERIVOKE_TENANT_TENANT_MANAGER_HH

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/addr_space.hh"
#include "revoke/revocation_engine.hh"
#include "stats/summary.hh"
#include "support/fault.hh"
#include "tenant/mutator_threads.hh"
#include "tenant/scheduler.hh"
#include "workload/driver.hh"

namespace cherivoke {
namespace tenant {

/** What a quarantine-budget trigger sweeps. */
enum class RevocationScope
{
    PerTenant, //!< only the pressured tenant's region
    Global,    //!< every tenant's quarantine, one pause
};

const char *scopeName(RevocationScope scope);
bool parseScope(const std::string &name, RevocationScope &out);

/**
 * Address-space stride between tenants: each tenant's segment bases
 * are the single-process bases shifted up by index * kTenantStride,
 * so tenant 0 occupies exactly the classic layout. 2 GiB covers the
 * full classic image (globals + heap + stack end below 0x8000'0000)
 * and keeps 512 tenants under the shadow region base.
 */
constexpr uint64_t kTenantStride = 0x8000'0000ULL;
constexpr size_t kMaxTenants = mem::kShadowBase / kTenantStride;

/** Segment layout of tenant @p index (fatal when index too large). */
mem::AddressSpace::Layout layoutForTenant(size_t index);

/** The shadow-region window that covers slot @p index's stride:
 *  disjoint between slots and page-aligned (the stride is a multiple
 *  of 128 pages), so a slot teardown can release it wholesale. */
std::pair<uint64_t, uint64_t> shadowWindowForTenant(size_t index);

/** Per-tenant knobs. */
struct TenantConfig
{
    std::string name;
    /** Scheduler share: ops per rotation relative to other tenants.
     *  Must be positive (a zero share could never be scheduled and
     *  is rejected up front, not at run()). */
    double weight = 1.0;
    alloc::CherivokeConfig alloc{};
    uint64_t globalsBytes = 512 * KiB;
    uint64_t stackBytes = 512 * KiB;
    /** Revocation policy for this tenant's engine domain; unset →
     *  the engine-wide default. Mixing policies on one engine is
     *  supported (epoch-owner-wins arbitration). */
    std::optional<revoke::PolicyKind> policy;
    /** Revocation backend for this tenant's engine domain; unset →
     *  the engine-wide default. Backends mix freely across tenants
     *  (each domain owns its backend and metadata). */
    std::optional<revoke::BackendKind> backend;
};

/** One hosted tenant: its region, allocator, and trace. */
class Tenant
{
  public:
    Tenant(size_t index, const TenantConfig &config,
           mem::TaggedMemory &shared, workload::Trace trace);

    size_t index() const { return index_; }
    const std::string &name() const { return config_.name; }
    const TenantConfig &config() const { return config_; }
    mem::AddressSpace &space() { return space_; }
    alloc::CherivokeAllocator &allocator() { return allocator_; }
    const workload::Trace &trace() const { return trace_; }

  private:
    size_t index_;
    TenantConfig config_;
    workload::Trace trace_;
    mem::AddressSpace space_;
    alloc::CherivokeAllocator allocator_;
};

/** One tenant's replay outcome. */
struct TenantResult
{
    std::string name;
    /** The tenant's stable id (lifecycle namespace). */
    uint64_t tenantId = 0;
    /** The 2 GiB slot the tenant occupied. */
    size_t index = 0;
    double weight = 1.0;
    /** Trace ops actually applied; < opsTotal when the tenant was
     *  retired before its trace finished. */
    uint64_t opsApplied = 0;
    uint64_t opsTotal = 0;
    bool retiredMidRun = false;
    /** Per-tenant driver statistics; .revoker holds this tenant's
     *  domain totals, not the engine-wide aggregate. */
    workload::DriverResult run;
    /** The multi-threaded mutator front-end's race over this
     *  tenant's applied trace prefix (config.mutator threads,
     *  epoch boundaries from the replay). The race never feeds back
     *  into `run`: modelled statistics are bit-identical across
     *  thread counts by construction. */
    MutatorRaceResult mutator;

    /** @name Fault containment (set when the tenant was retired by
     *  a contained HeapFault rather than by its own trace) */
    /// @{
    bool faulted = false;
    HeapFaultKind faultKind = HeapFaultKind::DoubleFree;
    /** opsApplied when the fault was contained. */
    uint64_t faultOp = 0;
    std::string faultMessage;
    /// @}
};

/** One contained fault, as the manager handled it. */
struct FaultRecord
{
    HeapFaultKind kind = HeapFaultKind::DoubleFree;
    uint64_t tenantId = 0;
    size_t slot = 0;
    /** Scheduler steps completed when the fault was contained. */
    uint64_t step = 0;
    /** Ops the faulting tenant had applied. */
    uint64_t opIndex = 0;
    /** Planned (fault-plan) injection vs organic trace damage. */
    bool injected = false;
    std::string message;
    /** Host wall-clock cost of the containment (drain + capture +
     *  teardown). Reporting only: excluded from fingerprints. */
    double wallSec = 0;
};

/** One tenant arrival or departure, as it was applied. */
struct LifecycleEvent
{
    enum class Kind { Spawn, Retire };

    Kind kind = Kind::Spawn;
    uint64_t tenantId = 0;
    size_t slot = 0;
    /** Scheduler steps completed when the event applied (0 when it
     *  happened before run()). */
    uint64_t step = 0;
    /** Spawn: the slot previously hosted a retired tenant. */
    bool reusedSlot = false;
    /** Retire: backing pages released (image + shadow window). */
    uint64_t pagesReleased = 0;
    /** Host wall-clock cost of the transition. Reporting only:
     *  non-deterministic, excluded from replay fingerprints. */
    double wallSec = 0;
};

/** Everything one multi-tenant replay produces. */
struct MultiTenantResult
{
    /** Retired tenants in retirement order, then survivors in slot
     *  order (a no-churn run is therefore slot order, as before). */
    std::vector<TenantResult> tenants;

    /** Engine-wide revocation totals (sum over all tenants). */
    revoke::EngineTotals engine;

    /** @name Aggregate mutator counters */
    /// @{
    uint64_t totalOps = 0;
    uint64_t allocCalls = 0;
    uint64_t freeCalls = 0;
    uint64_t freedBytes = 0;
    uint64_t ptrStores = 0;
    /// @}

    /** @name Mutator front-end aggregates (sum over tenants).
     *  Deterministic functions of traces + MutatorConfig; the
     *  fingerprint folds every tenant's race fingerprint in result
     *  order, so two runs of one configuration must match exactly. */
    /// @{
    uint64_t mutatorLocalFrees = 0;
    uint64_t mutatorRemoteFrees = 0;
    uint64_t mutatorBatches = 0;
    uint64_t mutatorEpochBarriers = 0;
    uint64_t mutatorFingerprint = 0;
    /// @}

    /** @name Tenant-lifecycle log (spawn/retire mid-run) */
    /// @{
    std::vector<LifecycleEvent> lifecycle;
    uint64_t spawns = 0;
    uint64_t retires = 0;
    /** Spawns that landed in a previously retired tenant's slot. */
    uint64_t slotsReused = 0;
    /// @}

    /** @name Fault containment and memory pressure */
    /// @{
    /** Every contained fault, in containment order. */
    std::vector<FaultRecord> faults;
    uint64_t faultsContained = 0;
    /** Tenants killed by the pressure ladder's last resort. */
    uint64_t oomKills = 0;
    /** Escalation-ladder activations (any rung). */
    uint64_t pressureEvents = 0;
    /** Pages reclaimed by emergency revocation + cold-page
     *  release while over the soft page budget. */
    uint64_t pressurePagesReclaimed = 0;
    /// @}

    /** @name Background-sweeper supervision (bg mode only) */
    /// @{
    /** Every supervision transition, in engine order (typed;
     *  deterministic fields only — see revoke/supervisor.hh). */
    std::vector<revoke::SweeperEvent> sweeperEvents;
    uint64_t sweeperDispatches = 0;
    uint64_t sweeperCompletions = 0;
    uint64_t sweeperStalls = 0;  //!< stall detections
    uint64_t sweeperRetries = 0; //!< watchdog retries granted
    uint64_t sweeperCrashes = 0;
    uint64_t sweeperReassigns = 0;   //!< ladder rung 1
    uint64_t sweeperStwCatchups = 0; //!< ladder rung 2
    uint64_t sweeperContainments = 0; //!< ladder rung 3
    /// @}

    /** @name Aggregate peaks across the consolidated image.
     *  Live-allocation count is tracked exactly (updated every op);
     *  byte aggregates are sampled every kAggregateSampleOps ops,
     *  which is deterministic and tight at these op rates. */
    /// @{
    uint64_t peakAggLiveAllocs = 0;
    uint64_t peakAggLiveBytes = 0;
    uint64_t peakAggQuarantineBytes = 0;
    uint64_t peakAggFootprintBytes = 0;
    /// @}

    /** Longest per-tenant virtual duration (tenants run
     *  concurrently, so wall-clock-like time is the max). */
    double virtualSeconds = 0;

    /** @name Per-tenant distributions (one sample per tenant) */
    /// @{
    stats::Summary tenantEpochs;
    stats::Summary tenantCapsRevoked;
    stats::Summary tenantPagesSwept;
    stats::Summary tenantPeakLiveAllocs;
    /// @}
};

/** Manager-wide knobs. */
struct TenantManagerConfig
{
    revoke::EngineConfig engine{};
    RevocationScope scope = RevocationScope::PerTenant;
    /** Mutator front-end fan-out applied to every tenant's replay
     *  (threads == 1: the classic serial front-end, no message
     *  traffic, race run inline). */
    MutatorConfig mutator{};

    /** Deterministic chaos schedule (CHERIVOKE_FAULT_PLAN /
     *  CHERIVOKE_FAULT_SEED); empty = no injections. */
    FaultPlan faultPlan{};

    /** Soft resident-page budget over the shared TaggedMemory
     *  (CHERIVOKE_PAGE_BUDGET_MIB); 0 = unlimited. Exceeding it
     *  walks the escalation ladder: emergency revocation of the
     *  pressured tenant → backoff and a global reclaim pass →
     *  tenant OOM-kill as the last resort. */
    size_t pageBudgetPages = 0;

    /** Scheduler steps between ladder escalations (retry window
     *  for reclamation to catch up before the next rung). */
    uint64_t pressureBackoffSteps = 64;
};

/** Aggregate-byte-peak sampling period, in scheduler steps. */
constexpr uint64_t kAggregateSampleOps = 32;

/** Hosts tenants and replays their traces against shared state. */
class TenantManager
{
  public:
    explicit TenantManager(
        TenantManagerConfig config = TenantManagerConfig{});

    /**
     * Add a tenant before run(): occupies the lowest free slot and
     * registers it as a domain of the shared engine (created on
     * first add). Its tenant id equals the returned slot.
     * @return the tenant's slot
     */
    size_t addTenant(const TenantConfig &config,
                     workload::Trace trace);

    /**
     * Register a spawnable tenant definition under @p id (must not
     * collide with a live tenant's id or another definition). A
     * SpawnTenant trace op — or a direct spawnTenant() call —
     * activates it later.
     */
    void defineTenant(uint64_t id, const TenantConfig &config,
                      workload::Trace trace);

    /**
     * Activate registered definition @p id in the lowest free slot
     * (reusing a retired slot when one exists). Fatal when @p id is
     * unknown or already live. @return the slot spawned into
     */
    size_t spawnTenant(uint64_t id);

    /**
     * Tear live tenant @p id down: drain its domain's open epoch (if
     * it owns one), capture its partial results, retire its engine
     * domain, unmap its PTEs (image segments + shadow window),
     * release every backing page of its slot, and put the slot on
     * the free list. Fatal when @p id is not live.
     */
    void retireTenant(uint64_t id);

    /** Live (spawned and not retired) tenants. */
    size_t tenantCount() const { return live_ids_.size(); }
    /** Slots ever occupied (live + retired, free-list included). */
    size_t slotCount() const { return slots_.size(); }
    size_t freeSlotCount() const { return free_slots_.size(); }
    bool tenantLive(uint64_t id) const
    {
        return live_ids_.count(id) != 0;
    }
    /** Slot of live tenant @p id (fatal when not live). */
    size_t slotOf(uint64_t id) const;

    /** The tenant in slot @p index (must be live). */
    Tenant &tenant(size_t index);
    mem::TaggedMemory &memory() { return memory_; }
    const TenantManagerConfig &config() const { return config_; }

    /** The shared engine; valid once a tenant has been added. */
    revoke::RevocationEngine &engine() { return *engine_; }

    /**
     * Interleave every tenant's trace to completion under the
     * weighted scheduler, pumping the shared engine per operation
     * and applying SpawnTenant/RetireTenant ops as they replay.
     * Callable once. @param hierarchy optional shared cache model
     */
    MultiTenantResult run(cache::Hierarchy *hierarchy = nullptr);

  private:
    /** One 2 GiB slot: its tenant + replayer while occupied. */
    struct Slot
    {
        std::unique_ptr<Tenant> tenant;
        std::unique_ptr<workload::TraceReplayer> replayer;
        uint64_t id = 0;
    };

    /** A registered spawnable tenant. */
    struct Definition
    {
        TenantConfig config;
        workload::Trace trace;
    };

    void pumpFor(size_t index, cache::Hierarchy *hierarchy);
    size_t takeSlot(bool &reused);
    size_t activate(uint64_t id, const TenantConfig &config,
                    workload::Trace trace);
    void onLifecycleOp(const workload::TraceOp &op);
    void applyPendingLifecycle();
    TenantResult captureResult(size_t slot, bool retired_mid_run);
    uint64_t releaseSlotMemory(size_t slot);

    /** Fire any planned injection due for the tenant in @p slot
     *  (throws HeapFault via the replayer when one is due). */
    void maybeInjectFault(size_t slot);

    /** Containment boundary: record @p fault, retire the tenant in
     *  @p slot through the standard teardown path. */
    void containFault(size_t slot, const HeapFault &fault);

    /** Emergency revocation + cold-page reclaim for one tenant.
     *  @return pages released */
    uint64_t emergencyReclaim(size_t slot,
                              cache::Hierarchy *hierarchy);

    /** Walk the escalation ladder for the tenant about to step.
     *  @return true when the ladder OOM-killed it (slot is gone) */
    bool applyPressureLadder(size_t slot,
                             cache::Hierarchy *hierarchy);

    TenantManagerConfig config_;
    mem::TaggedMemory memory_;
    std::vector<Slot> slots_;
    std::vector<size_t> free_slots_; //!< ascending; reuse lowest
    std::unordered_map<uint64_t, size_t> live_ids_; //!< id → slot
    std::unordered_map<uint64_t, Definition> definitions_;
    std::unique_ptr<revoke::RevocationEngine> engine_;
    TenantScheduler scheduler_;
    std::vector<TenantResult> retired_results_;
    std::vector<LifecycleEvent> events_;
    std::vector<FaultRecord> faults_;
    /** Fault being contained right now; captureResult stamps it
     *  into the retiring tenant's result. */
    std::optional<FaultRecord> containing_;
    /** The in-flight injection (set across injectFault's throw so
     *  containFault can tell planned from organic). */
    bool inject_in_flight_ = false;
    /** @name Escalation-ladder state */
    /// @{
    unsigned pressure_strikes_ = 0;  //!< rungs climbed this episode
    uint64_t pressure_retry_at_ = 0; //!< next rung no sooner than
                                     //!< this scheduler step
    uint64_t oom_kills_ = 0;
    uint64_t pressure_events_ = 0;
    uint64_t pressure_pages_reclaimed_ = 0;
    /// @}
    std::optional<workload::TraceOp> pending_; //!< lifecycle op from
                                               //!< the current step
    cache::Hierarchy *hierarchy_ = nullptr; //!< while run() executes
    uint64_t live_allocs_ = 0; //!< exact aggregate live allocations
    uint64_t steps_ = 0;
    uint64_t spawns_ = 0;
    uint64_t retires_ = 0;
    uint64_t slots_reused_ = 0;
    bool running_ = false;
    bool ran_ = false;
};

} // namespace tenant
} // namespace cherivoke

#endif // CHERIVOKE_TENANT_TENANT_MANAGER_HH

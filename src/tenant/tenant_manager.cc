#include "tenant/tenant_manager.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cherivoke {
namespace tenant {

const char *
scopeName(RevocationScope scope)
{
    switch (scope) {
      case RevocationScope::PerTenant: return "per-tenant";
      case RevocationScope::Global: return "global";
    }
    return "unknown";
}

bool
parseScope(const std::string &name, RevocationScope &out)
{
    if (name == "per-tenant" || name == "tenant") {
        out = RevocationScope::PerTenant;
        return true;
    }
    if (name == "global") {
        out = RevocationScope::Global;
        return true;
    }
    return false;
}

mem::AddressSpace::Layout
layoutForTenant(size_t index)
{
    if (index >= kMaxTenants)
        fatal("tenant %zu out of range: at a %llu-byte stride only "
              "%zu tenants fit below the shadow region",
              index, static_cast<unsigned long long>(kTenantStride),
              kMaxTenants);
    return mem::AddressSpace::Layout{}.shifted(index * kTenantStride);
}

Tenant::Tenant(size_t index, const TenantConfig &config,
               mem::TaggedMemory &shared, workload::Trace trace)
    : index_(index), config_(config), trace_(std::move(trace)),
      space_(shared, layoutForTenant(index), config.globalsBytes,
             config.stackBytes),
      allocator_(space_, config.alloc)
{
    // The whole image — stack end included — must stay inside this
    // tenant's stride, or it would silently alias the next tenant.
    const uint64_t region_end = (index + 1) * kTenantStride;
    if (space_.stack().end() > region_end)
        fatal("tenant %zu: stack segment ends at 0x%llx, past the "
              "tenant's 0x%llx region boundary",
              index,
              static_cast<unsigned long long>(space_.stack().end()),
              static_cast<unsigned long long>(region_end));
}

TenantManager::TenantManager(TenantManagerConfig config)
    : config_(config)
{}

size_t
TenantManager::addTenant(const TenantConfig &config,
                         workload::Trace trace)
{
    CHERIVOKE_ASSERT(!ran_, "(addTenant after run())");
    const size_t index = tenants_.size();
    auto t = std::make_unique<Tenant>(index, config, memory_,
                                      std::move(trace));
    if (!engine_) {
        engine_ = std::make_unique<revoke::RevocationEngine>(
            t->allocator(), t->space(), config_.engine);
    } else {
        const size_t domain =
            engine_->addDomain(t->allocator(), t->space());
        CHERIVOKE_ASSERT(domain == index);
    }
    tenants_.push_back(std::move(t));
    return index;
}

// Engine pump for tenant `index`: bind the engine to the tenant's
// domain, then let the configured scope decide what a budget trigger
// sweeps. An epoch already in flight always just advances (under the
// concurrent policy every tenant's allocator ops push it along —
// cross-tenant mutator assist).
void
TenantManager::pumpFor(size_t index, cache::Hierarchy *hierarchy)
{
    engine_->selectDomain(index);
    if (config_.scope == RevocationScope::PerTenant ||
        engine_->epochOpen()) {
        engine_->maybeRevoke(hierarchy);
        return;
    }
    // Global scope: one tenant's pressure stops the world for every
    // tenant that has anything quarantined.
    if (!engine_->quarantinePressure())
        return;
    for (size_t j = 0; j < tenants_.size(); ++j) {
        if (tenants_[j]->allocator().quarantinedBytes() == 0)
            continue;
        engine_->selectDomain(j);
        engine_->revokeNow(hierarchy);
    }
    engine_->selectDomain(index);
}

MultiTenantResult
TenantManager::run(cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(!ran_, "(run() is callable once)");
    CHERIVOKE_ASSERT(!tenants_.empty(), "(run() with no tenants)");
    ran_ = true;

    MultiTenantResult result;

    // Build one replayer per tenant, each pumping through the
    // manager so domain selection and scope apply.
    std::vector<std::unique_ptr<workload::TraceReplayer>> replayers;
    std::vector<double> weights;
    replayers.reserve(tenants_.size());
    for (auto &t : tenants_) {
        auto r = std::make_unique<workload::TraceReplayer>(
            t->space(), t->allocator(), engine_.get(), t->trace());
        r->setPump([this, index = t->index()](cache::Hierarchy *h) {
            pumpFor(index, h);
        });
        replayers.push_back(std::move(r));
        weights.push_back(t->config().weight);
    }

    TenantScheduler scheduler(weights);
    for (size_t i = 0; i < tenants_.size(); ++i) {
        if (replayers[i]->done())
            scheduler.markDone(i);
    }

    uint64_t live_allocs = 0; //!< exact aggregate, updated per step
    uint64_t steps = 0;
    auto sample_byte_peaks = [&]() {
        uint64_t live = 0, quarantined = 0, footprint = 0;
        for (auto &t : tenants_) {
            live += t->allocator().liveBytes();
            quarantined += t->allocator().quarantinedBytes();
            footprint += t->allocator().footprintBytes();
        }
        result.peakAggLiveBytes =
            std::max(result.peakAggLiveBytes, live);
        result.peakAggQuarantineBytes =
            std::max(result.peakAggQuarantineBytes, quarantined);
        result.peakAggFootprintBytes =
            std::max(result.peakAggFootprintBytes, footprint);
    };

    while (!scheduler.allDone()) {
        const size_t i = scheduler.next();
        workload::TraceReplayer &r = *replayers[i];
        const uint64_t live_before = r.liveObjects();
        r.step(hierarchy);
        live_allocs += r.liveObjects() - live_before; // may wrap; sums exactly
        result.peakAggLiveAllocs =
            std::max(result.peakAggLiveAllocs, live_allocs);
        if (++steps % kAggregateSampleOps == 0)
            sample_byte_peaks();
        if (r.done())
            scheduler.markDone(i);
    }
    sample_byte_peaks();

    // Finish every tenant (drains any epoch still open) and patch
    // each result's revocation view down to its own domain.
    result.tenants.reserve(tenants_.size());
    for (size_t i = 0; i < tenants_.size(); ++i) {
        engine_->selectDomain(i);
        TenantResult tr;
        tr.name = tenants_[i]->name();
        tr.index = i;
        tr.weight = tenants_[i]->config().weight;
        tr.run = replayers[i]->finish(hierarchy);
        tr.run.revoker = engine_->domainTotals(i);
        result.tenants.push_back(std::move(tr));
    }

    result.engine = engine_->totals();
    for (const TenantResult &tr : result.tenants) {
        result.allocCalls += tr.run.allocCalls;
        result.freeCalls += tr.run.freeCalls;
        result.freedBytes += tr.run.freedBytes;
        result.ptrStores += tr.run.ptrStores;
        result.virtualSeconds =
            std::max(result.virtualSeconds, tr.run.virtualSeconds);
        result.tenantEpochs.add(
            static_cast<double>(tr.run.revoker.epochs));
        result.tenantCapsRevoked.add(
            static_cast<double>(tr.run.revoker.sweep.capsRevoked));
        result.tenantPagesSwept.add(
            static_cast<double>(tr.run.revoker.sweep.pagesSwept));
        result.tenantPeakLiveAllocs.add(
            static_cast<double>(tr.run.peakLiveAllocs));
    }
    result.totalOps = steps;
    return result;
}

} // namespace tenant
} // namespace cherivoke

#include "tenant/tenant_manager.hh"

#include <algorithm>
#include <chrono>

#include "support/logging.hh"

namespace cherivoke {
namespace tenant {

namespace {

double
wallNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

const char *
scopeName(RevocationScope scope)
{
    switch (scope) {
      case RevocationScope::PerTenant: return "per-tenant";
      case RevocationScope::Global: return "global";
    }
    return "unknown";
}

bool
parseScope(const std::string &name, RevocationScope &out)
{
    if (name == "per-tenant" || name == "tenant") {
        out = RevocationScope::PerTenant;
        return true;
    }
    if (name == "global") {
        out = RevocationScope::Global;
        return true;
    }
    return false;
}

mem::AddressSpace::Layout
layoutForTenant(size_t index)
{
    if (index >= kMaxTenants)
        fatal("tenant %zu out of range: at a %llu-byte stride only "
              "%zu tenants fit below the shadow region",
              index, static_cast<unsigned long long>(kTenantStride),
              kMaxTenants);
    return mem::AddressSpace::Layout{}.shifted(index * kTenantStride);
}

std::pair<uint64_t, uint64_t>
shadowWindowForTenant(size_t index)
{
    // One shadow byte covers 128 bytes, so a 2 GiB stride owns a
    // 16 MiB shadow window; windows are page-aligned and disjoint
    // between slots.
    static_assert((kTenantStride >> 7) % kPageBytes == 0,
                  "slot shadow windows must be page aligned");
    const uint64_t lo = mem::kShadowBase + index * (kTenantStride >> 7);
    return {lo, lo + (kTenantStride >> 7)};
}

Tenant::Tenant(size_t index, const TenantConfig &config,
               mem::TaggedMemory &shared, workload::Trace trace)
    : index_(index), config_(config), trace_(std::move(trace)),
      space_(shared, layoutForTenant(index), config.globalsBytes,
             config.stackBytes),
      allocator_(space_, config.alloc)
{
    // The whole image — stack end included — must stay inside this
    // tenant's stride, or it would silently alias the next tenant.
    const uint64_t region_end = (index + 1) * kTenantStride;
    if (space_.stack().end() > region_end)
        fatal("tenant %zu: stack segment ends at 0x%llx, past the "
              "tenant's 0x%llx region boundary",
              index,
              static_cast<unsigned long long>(space_.stack().end()),
              static_cast<unsigned long long>(region_end));
}

TenantManager::TenantManager(TenantManagerConfig config)
    : config_(std::move(config))
{
    memory_.setSoftPageBudget(config_.pageBudgetPages);
}

size_t
TenantManager::slotOf(uint64_t id) const
{
    auto it = live_ids_.find(id);
    if (it == live_ids_.end())
        fatal("tenant %llu is not live",
              static_cast<unsigned long long>(id));
    return it->second;
}

Tenant &
TenantManager::tenant(size_t index)
{
    CHERIVOKE_ASSERT(index < slots_.size() && slots_[index].tenant,
                     "(no live tenant in this slot)");
    return *slots_[index].tenant;
}

size_t
TenantManager::takeSlot(bool &reused)
{
    if (!free_slots_.empty()) {
        // Ascending order: reuse the lowest retired slot, so slot
        // assignment is a deterministic function of the
        // spawn/retire history.
        const size_t slot = free_slots_.front();
        free_slots_.erase(free_slots_.begin());
        reused = true;
        return slot;
    }
    reused = false;
    return slots_.size();
}

size_t
TenantManager::activate(uint64_t id, const TenantConfig &config,
                        workload::Trace trace)
{
    if (config.weight <= 0)
        fatal("tenant '%s': weight must be positive (got %g)",
              config.name.c_str(), config.weight);

    const double t0 = wallNow();
    bool reused = false;
    const size_t slot = takeSlot(reused);
    auto t = std::make_unique<Tenant>(slot, config, memory_,
                                      std::move(trace));
    if (!engine_) {
        CHERIVOKE_ASSERT(slot == 0);
        // Sweeper injections ride in on the fault plan; surface
        // them to the engine unless the caller wired its own.
        if (config_.engine.sweeperPlan.empty() &&
            !config_.faultPlan.sweeper.empty())
            config_.engine.sweeperPlan = config_.faultPlan.sweeper;
        engine_ = std::make_unique<revoke::RevocationEngine>(
            t->allocator(), t->space(), config_.engine);
        // Route every epoch open to the owning tenant's replayer:
        // the recorded boundary is where that tenant's mutator
        // threads must flush + drain their remote-free queues
        // (domain index == slot index by construction).
        engine_->setEpochOpenHook([this](size_t domain) {
            if (domain < slots_.size() && slots_[domain].replayer)
                slots_[domain].replayer->noteEpochBoundary();
        });
    } else {
        engine_->bindDomain(slot, t->allocator(), t->space());
    }
    if (config.policy)
        engine_->setDomainPolicy(slot, *config.policy);
    if (config.backend)
        engine_->setDomainBackend(slot, *config.backend);

    auto r = std::make_unique<workload::TraceReplayer>(
        t->space(), t->allocator(), engine_.get(), t->trace());
    r->setPump([this, slot](cache::Hierarchy *h) {
        pumpFor(slot, h);
    });
    // Per-use checks bill this tenant's own domain, never whichever
    // domain happens to be selected.
    r->setDeref([this, slot](uint64_t n) {
        engine_->notePointerUse(slot, n);
    });
    // Finishing (or retiring) this tenant must never complete a
    // neighbour's in-flight epoch: drain only our own domain's.
    r->setDrain([this, slot](cache::Hierarchy *h) {
        engine_->drainDomain(slot, h);
    });
    r->setLifecycle([this](const workload::TraceOp &op) {
        onLifecycleOp(op);
    });

    scheduler_.arrive(slot, config.weight);
    if (r->done())
        scheduler_.markDone(slot); // empty trace: never scheduled

    Slot state{std::move(t), std::move(r), id};
    if (slot == slots_.size()) {
        slots_.push_back(std::move(state));
    } else {
        slots_[slot] = std::move(state);
    }
    live_ids_[id] = slot;

    ++spawns_;
    if (reused)
        ++slots_reused_;
    LifecycleEvent ev;
    ev.kind = LifecycleEvent::Kind::Spawn;
    ev.tenantId = id;
    ev.slot = slot;
    ev.step = steps_;
    ev.reusedSlot = reused;
    ev.wallSec = wallNow() - t0;
    events_.push_back(ev);
    return slot;
}

size_t
TenantManager::addTenant(const TenantConfig &config,
                         workload::Trace trace)
{
    CHERIVOKE_ASSERT(!ran_, "(addTenant after run())");
    // The static tenant's id equals the slot activate() will take
    // (the lowest free slot, else the next fresh one).
    const size_t id = free_slots_.empty() ? slots_.size()
                                          : free_slots_.front();
    if (live_ids_.count(id) || definitions_.count(id))
        fatal("tenant id %zu already in use", id);
    return activate(id, config, std::move(trace));
}

void
TenantManager::defineTenant(uint64_t id, const TenantConfig &config,
                            workload::Trace trace)
{
    if (definitions_.count(id))
        fatal("tenant definition %llu already registered",
              static_cast<unsigned long long>(id));
    if (live_ids_.count(id))
        fatal("tenant id %llu already names a live tenant",
              static_cast<unsigned long long>(id));
    if (config.weight <= 0)
        fatal("tenant '%s': weight must be positive (got %g)",
              config.name.c_str(), config.weight);
    definitions_.emplace(id,
                         Definition{config, std::move(trace)});
}

size_t
TenantManager::spawnTenant(uint64_t id)
{
    CHERIVOKE_ASSERT(!ran_ || running_,
                     "(spawnTenant after run() completed)");
    auto it = definitions_.find(id);
    if (it == definitions_.end())
        fatal("spawn of unknown tenant definition %llu",
              static_cast<unsigned long long>(id));
    if (live_ids_.count(id))
        fatal("spawn of already-live tenant %llu",
              static_cast<unsigned long long>(id));
    // The definition stays registered: a retired id can respawn.
    return activate(id, it->second.config, it->second.trace);
}

TenantResult
TenantManager::captureResult(size_t slot, bool retired_mid_run)
{
    Slot &s = slots_[slot];
    TenantResult tr;
    tr.name = s.tenant->name();
    tr.tenantId = s.id;
    tr.index = slot;
    tr.weight = s.tenant->config().weight;
    tr.opsApplied = s.replayer->opsApplied();
    tr.opsTotal = s.replayer->opsTotal();
    tr.retiredMidRun = retired_mid_run;
    tr.run = s.replayer->finish(hierarchy_);
    tr.run.revoker = engine_->domainTotals(slot);
    // Race the applied prefix across the configured mutator threads
    // with the epoch boundaries this replay actually hit. Purely
    // additive: the modelled statistics above never depend on it.
    tr.mutator = runMutatorRace(s.tenant->trace(), tr.opsApplied,
                                config_.mutator,
                                s.replayer->epochOpenOps());
    if (containing_) {
        tr.faulted = true;
        tr.faultKind = containing_->kind;
        tr.faultOp = tr.opsApplied;
        tr.faultMessage = containing_->message;
    }
    return tr;
}

uint64_t
TenantManager::releaseSlotMemory(size_t slot)
{
    Tenant &t = *slots_[slot].tenant;
    mem::PageTable &pt = memory_.pageTable();
    for (const mem::Segment &seg : t.space().sweepableSegments())
        pt.unmap(seg.base, seg.size);
    const auto [shadow_lo, shadow_hi] = shadowWindowForTenant(slot);
    pt.unmap(shadow_lo, shadow_hi - shadow_lo);

    uint64_t released =
        memory_.releaseRange(slot * kTenantStride, kTenantStride);
    released += memory_.releaseRange(shadow_lo,
                                     shadow_hi - shadow_lo);
    return released;
}

void
TenantManager::retireTenant(uint64_t id)
{
    // Legal before run() (tests, setup) and during it (lifecycle
    // ops), but not after: the replayers have been finished.
    CHERIVOKE_ASSERT(!ran_ || running_,
                     "(retireTenant after run() completed)");
    const double t0 = wallNow();
    const size_t slot = slotOf(id);

    // 1. An epoch this tenant owns must complete before its region
    //    disappears (a neighbour's open epoch is left untouched).
    engine_->drainDomain(slot, hierarchy_);

    // 2. Capture the partial replay before the state goes away.
    live_allocs_ -= slots_[slot].replayer->liveObjects();
    TenantResult tr = captureResult(slot, true);

    // 3. Retire the engine domain; the engine requires the active
    //    domain to move off the slot first when others remain.
    if (engine_->activeDomain() == slot) {
        for (size_t j = 0; j < slots_.size(); ++j) {
            if (j != slot && slots_[j].tenant) {
                engine_->selectDomain(j);
                break;
            }
        }
    }
    engine_->retireDomain(slot, hierarchy_);

    // 4. Unmap the image + shadow PTEs and release every backing
    //    page of the slot: the next occupant must observe a
    //    fresh-slot image (zero data, zero tags, zero shadow, zero
    //    residency, no CapDirty history).
    const uint64_t released = releaseSlotMemory(slot);

    // 5. Free the slot for reuse.
    slots_[slot].replayer.reset();
    slots_[slot].tenant.reset();
    free_slots_.insert(
        std::lower_bound(free_slots_.begin(), free_slots_.end(),
                         slot),
        slot);
    scheduler_.markDone(slot);
    live_ids_.erase(id);
    retired_results_.push_back(std::move(tr));

    ++retires_;
    LifecycleEvent ev;
    ev.kind = LifecycleEvent::Kind::Retire;
    ev.tenantId = id;
    ev.slot = slot;
    ev.step = steps_;
    ev.pagesReleased = released;
    ev.wallSec = wallNow() - t0;
    events_.push_back(ev);
}

void
TenantManager::onLifecycleOp(const workload::TraceOp &op)
{
    // Validate eagerly (the fatal belongs to the op that asked), but
    // apply after the current step returns: tearing down the tenant
    // that is mid-step — a trace retiring its own issuer — would
    // destroy the replayer under its own feet.
    if (op.kind == workload::OpKind::SpawnTenant) {
        if (!definitions_.count(op.id))
            fatal("spawn of unknown tenant definition %llu",
                  static_cast<unsigned long long>(op.id));
        if (live_ids_.count(op.id))
            fatal("spawn of already-live tenant %llu",
                  static_cast<unsigned long long>(op.id));
    } else {
        if (!live_ids_.count(op.id))
            fatal("retire of unknown tenant %llu",
                  static_cast<unsigned long long>(op.id));
    }
    CHERIVOKE_ASSERT(!pending_,
                     "(two lifecycle ops from one trace step)");
    pending_ = op;
}

void
TenantManager::applyPendingLifecycle()
{
    if (!pending_)
        return;
    const workload::TraceOp op = *pending_;
    pending_.reset();
    if (op.kind == workload::OpKind::SpawnTenant) {
        spawnTenant(op.id);
    } else {
        retireTenant(op.id);
    }
}

// Engine pump for tenant `index`: bind the engine to the tenant's
// domain, then let the configured scope decide what a budget trigger
// sweeps. An epoch already in flight always just advances, under the
// policy of the domain that owns it (cross-tenant mutator assist —
// also the arbitration point when policies are mixed).
void
TenantManager::pumpFor(size_t index, cache::Hierarchy *hierarchy)
{
    engine_->selectDomain(index);
    if (config_.scope == RevocationScope::PerTenant ||
        engine_->epochOpen()) {
        engine_->maybeRevoke(hierarchy);
        return;
    }
    // Global scope: one tenant's pressure stops the world for every
    // tenant that has anything quarantined.
    if (!engine_->quarantinePressure())
        return;
    for (size_t j = 0; j < slots_.size(); ++j) {
        if (!slots_[j].tenant ||
            slots_[j].tenant->allocator().quarantinedBytes() == 0)
            continue;
        engine_->selectDomain(j);
        engine_->revokeNow(hierarchy);
    }
    engine_->selectDomain(index);
}

void
TenantManager::maybeInjectFault(size_t slot)
{
    if (config_.faultPlan.empty())
        return;
    const uint64_t id = slots_[slot].id;
    for (FaultInjection &fi : config_.faultPlan.injections) {
        if (fi.fired || fi.tenantId != id ||
            slots_[slot].replayer->opsApplied() < fi.opIndex)
            continue;
        fi.fired = true;
        inject_in_flight_ = true;
        slots_[slot].replayer->injectFault(fi.kind); // throws
    }
}

void
TenantManager::containFault(size_t slot, const HeapFault &fault)
{
    const double t0 = wallNow();
    FaultRecord rec;
    rec.kind = fault.kind();
    rec.tenantId = slots_[slot].id;
    rec.slot = slot;
    rec.step = steps_;
    rec.opIndex = slots_[slot].replayer->opsApplied();
    rec.injected = inject_in_flight_;
    rec.message = fault.what();
    inject_in_flight_ = false;
    // The standard teardown path IS the containment mechanism:
    // drain the tenant's own epoch, capture its partial results
    // (captureResult stamps the fault from containing_), retire its
    // engine domain, unmap + release its slot. Surviving tenants
    // never observe the faulty tenant's post-fault ops.
    containing_ = rec;
    retireTenant(rec.tenantId);
    containing_.reset();
    rec.wallSec = wallNow() - t0;
    faults_.push_back(std::move(rec));
}

uint64_t
TenantManager::emergencyReclaim(size_t slot,
                                cache::Hierarchy *hierarchy)
{
    const uint64_t before = memory_.residentPages();
    Slot &s = slots_[slot];
    // Force-complete any epoch the tenant owns, then revoke its
    // whole quarantine now: revoked chunks become internal-free, so
    // their interior pages are releasable cold pages.
    engine_->selectDomain(slot);
    engine_->drainDomain(slot, hierarchy);
    if (s.tenant->allocator().quarantinedBytes() > 0)
        engine_->revokeNow(hierarchy);
    s.tenant->allocator().dl().releaseColdPages();
    const uint64_t after = memory_.residentPages();
    return before > after ? before - after : 0;
}

bool
TenantManager::applyPressureLadder(size_t slot,
                                   cache::Hierarchy *hierarchy)
{
    if (config_.pageBudgetPages == 0)
        return false;
    if (!memory_.overSoftBudget()) {
        pressure_strikes_ = 0; // episode over; reclamation caught up
        return false;
    }
    if (pressure_strikes_ > 0 && steps_ < pressure_retry_at_)
        return false; // backoff: give the last rung room to land
    ++pressure_events_;
    ++pressure_strikes_;
    pressure_retry_at_ = steps_ + config_.pressureBackoffSteps;
    if (pressure_strikes_ == 1) {
        // Rung 1: emergency revocation + cold-page release for the
        // tenant about to step (it is the one asking for pages).
        pressure_pages_reclaimed_ += emergencyReclaim(slot, hierarchy);
        return false;
    }
    if (pressure_strikes_ == 2) {
        // Rung 2: the pressured tenant alone was not enough — one
        // global reclaim pass over every live tenant.
        for (size_t j = 0; j < slots_.size(); ++j)
            if (slots_[j].tenant)
                pressure_pages_reclaimed_ +=
                    emergencyReclaim(j, hierarchy);
        return false;
    }
    // Rung 3: last resort — OOM-kill the tenant about to step.
    ++oom_kills_;
    pressure_strikes_ = 0;
    const HeapFault fault(
        HeapFaultKind::OutOfMemory,
        "heap fault (oom): " +
            detail::formatMessage(
                "%llu resident pages still over the %llu-page soft "
                "budget after emergency and global reclamation",
                static_cast<unsigned long long>(
                    memory_.residentPages()),
                static_cast<unsigned long long>(
                    config_.pageBudgetPages)));
    containFault(slot, fault);
    return true;
}

MultiTenantResult
TenantManager::run(cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(!ran_, "(run() is callable once)");
    CHERIVOKE_ASSERT(!live_ids_.empty(), "(run() with no tenants)");
    ran_ = true;
    running_ = true;
    hierarchy_ = hierarchy;

    MultiTenantResult result;

    auto sample_byte_peaks = [&]() {
        uint64_t live = 0, quarantined = 0, footprint = 0;
        for (const Slot &s : slots_) {
            if (!s.tenant)
                continue;
            live += s.tenant->allocator().liveBytes();
            quarantined += s.tenant->allocator().quarantinedBytes();
            footprint += s.tenant->allocator().footprintBytes();
        }
        result.peakAggLiveBytes =
            std::max(result.peakAggLiveBytes, live);
        result.peakAggQuarantineBytes =
            std::max(result.peakAggQuarantineBytes, quarantined);
        result.peakAggFootprintBytes =
            std::max(result.peakAggFootprintBytes, footprint);
    };

    while (!scheduler_.allDone()) {
        const size_t i = scheduler_.next();
        // Memory pressure resolves before the tenant steps; the
        // ladder's last rung OOM-kills the slot, leaving nothing
        // to step this turn.
        if (applyPressureLadder(i, hierarchy))
            continue;
        workload::TraceReplayer &r = *slots_[i].replayer;
        const uint64_t live_before = r.liveObjects();
        try {
            maybeInjectFault(i);
            r.step(hierarchy);
            live_allocs_ += r.liveObjects() - live_before;
            // may wrap; sums exactly
        } catch (const HeapFault &fault) {
            // The step's own live delta must land before containment:
            // the retire path inside subtracts the tenant's full
            // remaining live count. PanicError (TCB bugs) and plain
            // FatalError (configuration) fall through uncontained.
            live_allocs_ += r.liveObjects() - live_before;
            // A sweeper failure belongs to the domain whose epoch
            // the supervisor gave up on — under cross-tenant assist
            // that may not be the tenant that was stepping.
            size_t victim = i;
            if (fault.kind() == HeapFaultKind::SweeperFailure &&
                engine_->epochOpen() &&
                slots_[engine_->epochDomainIndex()].tenant)
                victim = engine_->epochDomainIndex();
            containFault(victim, fault);
        }
        ++steps_;
        result.peakAggLiveAllocs =
            std::max(result.peakAggLiveAllocs, live_allocs_);
        if (steps_ % kAggregateSampleOps == 0)
            sample_byte_peaks();
        // A lifecycle op this step requested applies now, once the
        // issuing replayer is off the stack (it may retire itself).
        applyPendingLifecycle();
        if (slots_[i].replayer && slots_[i].replayer->done())
            scheduler_.markDone(i);
    }
    sample_byte_peaks();

    // Finish every surviving tenant (drains an epoch it owns) and
    // patch each result's revocation view down to its own domain;
    // retired tenants were captured at retirement.
    result.tenants = std::move(retired_results_);
    retired_results_.clear();
    for (size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].tenant)
            continue;
        engine_->selectDomain(i);
        result.tenants.push_back(captureResult(i, false));
    }

    result.engine = engine_->totals();
    for (const TenantResult &tr : result.tenants) {
        result.allocCalls += tr.run.allocCalls;
        result.freeCalls += tr.run.freeCalls;
        result.freedBytes += tr.run.freedBytes;
        result.ptrStores += tr.run.ptrStores;
        result.virtualSeconds =
            std::max(result.virtualSeconds, tr.run.virtualSeconds);
        result.tenantEpochs.add(
            static_cast<double>(tr.run.revoker.epochs));
        result.tenantCapsRevoked.add(
            static_cast<double>(tr.run.revoker.sweep.capsRevoked));
        result.tenantPagesSwept.add(
            static_cast<double>(tr.run.revoker.sweep.pagesSwept));
        result.tenantPeakLiveAllocs.add(
            static_cast<double>(tr.run.peakLiveAllocs));
        result.mutatorLocalFrees += tr.mutator.localFrees;
        result.mutatorRemoteFrees += tr.mutator.remoteFrees;
        result.mutatorBatches += tr.mutator.batches;
        result.mutatorEpochBarriers += tr.mutator.epochBarriers;
    }
    // Fold the per-tenant race fingerprints (FNV-1a over the
    // result-order sequence, seeded with the offset basis).
    result.mutatorFingerprint = 0xcbf29ce484222325ULL;
    for (const TenantResult &tr : result.tenants) {
        result.mutatorFingerprint ^= tr.mutator.fingerprint();
        result.mutatorFingerprint *= 0x100000001b3ULL;
    }
    result.totalOps = steps_;
    result.lifecycle = events_;
    result.spawns = spawns_;
    result.retires = retires_;
    result.slotsReused = slots_reused_;
    result.faults = faults_;
    result.faultsContained = faults_.size();
    result.oomKills = oom_kills_;
    result.pressureEvents = pressure_events_;
    result.pressurePagesReclaimed = pressure_pages_reclaimed_;

    result.sweeperEvents = engine_->sweeperEvents();
    for (const revoke::SweeperEvent &ev : result.sweeperEvents) {
        switch (ev.kind) {
          case revoke::SweeperEventKind::Dispatch:
            ++result.sweeperDispatches;
            break;
          case revoke::SweeperEventKind::Completed:
            ++result.sweeperCompletions;
            break;
          case revoke::SweeperEventKind::StallDetected:
            ++result.sweeperStalls;
            break;
          case revoke::SweeperEventKind::Retry:
            ++result.sweeperRetries;
            break;
          case revoke::SweeperEventKind::Crash:
            ++result.sweeperCrashes;
            break;
          case revoke::SweeperEventKind::ReassignToAssist:
            ++result.sweeperReassigns;
            break;
          case revoke::SweeperEventKind::StwCatchup:
            ++result.sweeperStwCatchups;
            break;
          case revoke::SweeperEventKind::Containment:
            ++result.sweeperContainments;
            break;
        }
    }

    running_ = false;
    hierarchy_ = nullptr;
    return result;
}

} // namespace tenant
} // namespace cherivoke

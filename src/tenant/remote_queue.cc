#include "tenant/remote_queue.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace tenant {

RemoteFreeQueue::RemoteFreeQueue()
    : back_(&stub_), front_(&stub_), stub_(0, 0)
{}

RemoteFreeQueue::~RemoteFreeQueue()
{
    // A correct shutdown drains the queue first (teardown contract);
    // delete whatever a failed run left behind so error paths do not
    // leak. The stub may sit anywhere in the remaining chain.
    FreeBatch *node = front_;
    while (node) {
        FreeBatch *next = node->next.load(std::memory_order_acquire);
        if (node != &stub_)
            delete node;
        node = next;
    }
}

void
RemoteFreeQueue::push(FreeBatch *node)
{
    node->next.store(nullptr, std::memory_order_relaxed);
    FreeBatch *prev =
        back_.exchange(node, std::memory_order_acq_rel);
    // The queue is transiently split until this store lands; the
    // consumer observes that as "empty or in flight" and retries.
    prev->next.store(node, std::memory_order_release);
}

void
RemoteFreeQueue::enqueue(std::unique_ptr<FreeBatch> batch)
{
    CHERIVOKE_ASSERT(batch != nullptr);
    // Count before publishing so a quiesced drained() check never
    // reads "drained" while the node is still reachable only through
    // the producer.
    enqueued_.fetch_add(1, std::memory_order_release);
    push(batch.release());
}

std::unique_ptr<FreeBatch>
RemoteFreeQueue::tryDequeue()
{
    FreeBatch *head = front_;
    FreeBatch *next = head->next.load(std::memory_order_acquire);
    if (head == &stub_) {
        if (!next)
            return nullptr; // empty (or producer mid-publish)
        front_ = next;
        head = next;
        next = head->next.load(std::memory_order_acquire);
    }
    if (next) {
        front_ = next;
        ++dequeued_;
        return std::unique_ptr<FreeBatch>(head);
    }
    // head looks like the last node. If a producer has already
    // exchanged back_ but not yet linked, the chain is split: retry
    // later rather than detaching a node a producer still points at.
    if (back_.load(std::memory_order_acquire) != head)
        return nullptr;
    // Recycle the stub behind head so head can be detached.
    push(&stub_);
    next = head->next.load(std::memory_order_acquire);
    if (next) {
        front_ = next;
        ++dequeued_;
        return std::unique_ptr<FreeBatch>(head);
    }
    return nullptr; // another producer slipped in mid-publish
}

RemoteSender::RemoteSender(unsigned producer, RemoteFreeQueue &dest,
                           size_t batch_capacity)
    : producer_(producer), dest_(&dest), capacity_(batch_capacity)
{
    CHERIVOKE_ASSERT(batch_capacity > 0);
}

void
RemoteSender::send(const RemoteFree &f)
{
    if (!pending_)
        pending_ = std::make_unique<FreeBatch>(producer_, capacity_);
    pending_->entries.push_back(f);
    if (pending_->entries.size() >= capacity_)
        flush();
}

void
RemoteSender::flush()
{
    if (!pending_ || pending_->entries.empty())
        return;
    pending_->seq = next_seq_++;
    sent_entries_ += pending_->entries.size();
    ++sent_batches_;
    dest_->enqueue(std::move(pending_));
}

} // namespace tenant
} // namespace cherivoke

/**
 * @file
 * Batched remote-free message passing between mutator threads
 * (snmalloc msgpass-style). Every mutator thread owns the chunks it
 * allocated; a free() executed by a *different* thread must not touch
 * the owner's quarantine directly. Instead the freeing thread batches
 * the free into a FreeBatch destined for the owner and, when the
 * batch fills (or at a flush boundary: epoch open, thread teardown),
 * pushes it onto the owner's RemoteFreeQueue — a lock-free
 * multi-producer single-consumer queue of batch nodes. The owner
 * drains its queue on its malloc slow path and at epoch boundaries,
 * handing the drained frees to its quarantine.
 *
 * The queue is the intrusive two-pointer MPSC design (a stub node
 * plus an exchange on the back pointer), so a producer enqueues with
 * one atomic exchange and one store regardless of contention, and the
 * consumer dequeues without atomics on the fast path. tryDequeue()
 * may transiently return nullptr while a producer is between its
 * exchange and its link store; enqueuedBatches()/dequeuedBatches()
 * let a quiesced consumer (teardown, epoch barrier) distinguish
 * "empty" from "in flight" exactly.
 *
 * Determinism contract: the *arrival interleaving* across producers
 * is racy, but per producer the batch sequence numbers arrive in
 * order, and every total a drained-queue consumer can observe
 * (entries, batches, per-producer counts) is a deterministic function
 * of what the producers sent.
 */

#ifndef CHERIVOKE_TENANT_REMOTE_QUEUE_HH
#define CHERIVOKE_TENANT_REMOTE_QUEUE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace cherivoke {
namespace tenant {

/** One deferred free in flight between threads. */
struct RemoteFree
{
    uint64_t id = 0;    //!< trace allocation id being freed
    uint64_t bytes = 0; //!< the allocation's modelled size
};

/** A batch of remote frees from one producer: the message unit. */
struct FreeBatch
{
    FreeBatch(unsigned producer_thread, size_t capacity)
        : producer(producer_thread)
    {
        entries.reserve(capacity);
    }

    unsigned producer = 0; //!< sending thread
    uint64_t seq = 0;      //!< per (producer, queue) sequence number
    std::vector<RemoteFree> entries;
    std::atomic<FreeBatch *> next{nullptr}; //!< queue linkage
};

/**
 * Lock-free MPSC queue of FreeBatch nodes. enqueue() may be called
 * from any thread; tryDequeue() from exactly one consumer thread.
 * The queue owns enqueued batches until they are dequeued (the
 * consumer takes ownership back); batches still queued at
 * destruction are deleted.
 */
class RemoteFreeQueue
{
  public:
    RemoteFreeQueue();
    ~RemoteFreeQueue();

    RemoteFreeQueue(const RemoteFreeQueue &) = delete;
    RemoteFreeQueue &operator=(const RemoteFreeQueue &) = delete;

    /** Publish @p batch (ownership passes to the queue). */
    void enqueue(std::unique_ptr<FreeBatch> batch);

    /**
     * Pop the oldest fully linked batch, or nullptr when the queue
     * is empty *or* a producer is mid-publish. Consumer thread only.
     */
    std::unique_ptr<FreeBatch> tryDequeue();

    /** Batches ever enqueued (any thread; exact once quiesced). */
    uint64_t enqueuedBatches() const
    {
        return enqueued_.load(std::memory_order_acquire);
    }

    /** Batches dequeued so far (consumer thread's own count). */
    uint64_t dequeuedBatches() const { return dequeued_; }

    /**
     * Every published batch has been consumed. Exact only when no
     * producer is mid-enqueue (after a barrier or join); while
     * producers run it is a racy snapshot.
     */
    bool drained() const
    {
        return dequeuedBatches() == enqueuedBatches();
    }

  private:
    void push(FreeBatch *node);

    std::atomic<FreeBatch *> back_;
    FreeBatch *front_; //!< consumer-owned
    FreeBatch stub_;
    std::atomic<uint64_t> enqueued_{0};
    uint64_t dequeued_ = 0;
};

/**
 * Producer-side batching for one (producer thread, destination
 * queue) pair: send() appends to a pending batch and publishes it
 * when it reaches the batch capacity; flush() publishes a partial
 * batch at a boundary (epoch open, teardown). Counts are exact and
 * deterministic in the producer's send/flush sequence.
 */
class RemoteSender
{
  public:
    RemoteSender(unsigned producer, RemoteFreeQueue &dest,
                 size_t batch_capacity);

    /** Batch @p f; publishes the batch when it fills. */
    void send(const RemoteFree &f);

    /** Publish a partial batch (no-op when nothing is pending). */
    void flush();

    /** Entries published to the queue so far (flushed batches). */
    uint64_t sentEntries() const { return sent_entries_; }
    /** Batches published so far. */
    uint64_t sentBatches() const { return sent_batches_; }
    /** Entries sitting in the unpublished pending batch. */
    uint64_t pendingEntries() const
    {
        return pending_ ? pending_->entries.size() : 0;
    }

  private:
    unsigned producer_;
    RemoteFreeQueue *dest_;
    size_t capacity_;
    std::unique_ptr<FreeBatch> pending_;
    uint64_t sent_entries_ = 0;
    uint64_t sent_batches_ = 0;
    uint64_t next_seq_ = 0;
};

} // namespace tenant
} // namespace cherivoke

#endif // CHERIVOKE_TENANT_REMOTE_QUEUE_HH

/**
 * @file
 * Deterministic tenant interleaving: smooth weighted round-robin
 * (the nginx algorithm). Every pick adds each runnable tenant's
 * weight to its credit, selects the highest credit (lowest index on
 * ties), and charges the winner the total runnable weight. The
 * resulting sequence is perfectly smooth — a 2:1:1 weighting yields
 * A B A C A B A C … rather than A A B C — and is a pure function of
 * the weights and completion order, which is what makes multi-tenant
 * replay bit-reproducible.
 *
 * The rotation is dynamic: tenants arrive (arrive(), credit 0) and
 * depart (markDone()) mid-run, and the runnable weight total is
 * re-normalised by exact recomputation over the runnable set on
 * every membership change — never by incremental +=/-=, whose
 * floating-point drift would make the pick sequence depend on the
 * full arrival history rather than on the current membership.
 */

#ifndef CHERIVOKE_TENANT_SCHEDULER_HH
#define CHERIVOKE_TENANT_SCHEDULER_HH

#include <cstddef>
#include <vector>

namespace cherivoke {
namespace tenant {

/** Picks which tenant's trace advances next. */
class TenantScheduler
{
  public:
    /** An empty rotation; tenants join via arrive(). */
    TenantScheduler() = default;

    /** @param weights one positive share per tenant */
    explicit TenantScheduler(std::vector<double> weights);

    /** Tenants still runnable. */
    size_t activeCount() const { return active_; }
    bool allDone() const { return active_ == 0; }
    size_t size() const { return entries_.size(); }

    /** Is slot @p index currently in the rotation? */
    bool isRunnable(size_t index) const
    {
        return index < entries_.size() && !entries_[index].done;
    }

    /**
     * A tenant joins (or re-joins) the rotation at slot @p index
     * with share @p weight and zero credit. @p index must be the
     * next fresh slot (== size()) or a slot whose previous occupant
     * departed — re-joining mirrors tenant-slot reuse.
     */
    void arrive(size_t index, double weight);

    /** Remove a finished (or retired) tenant from the rotation. */
    void markDone(size_t index);

    /** The next tenant to run one operation; requires !allDone(). */
    size_t next();

  private:
    /** Recompute the runnable-weight total exactly (see file doc). */
    void renormalize();
    struct Entry
    {
        double weight = 1.0;
        double credit = 0.0;
        bool done = false;
    };

    std::vector<Entry> entries_;
    double total_weight_ = 0; //!< over runnable tenants
    size_t active_ = 0;
};

} // namespace tenant
} // namespace cherivoke

#endif // CHERIVOKE_TENANT_SCHEDULER_HH

#include "tenant/trace_codec.hh"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "support/fault.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace tenant {

namespace {

void
putU32(uint8_t *dst, uint32_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

void
putU64(uint8_t *dst, uint64_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

void
putF64(uint8_t *dst, double v)
{
    std::memcpy(dst, &v, sizeof(v));
}

uint32_t
getU32(const uint8_t *src)
{
    uint32_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

uint64_t
getU64(const uint8_t *src)
{
    uint64_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

double
getF64(const uint8_t *src)
{
    double v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

uint32_t
auxOrDie(uint64_t offset, size_t index)
{
    if (offset > std::numeric_limits<uint32_t>::max())
        fatal("trace op %zu: offset %llu overflows the binary "
              "format's 32-bit aux field",
              index, static_cast<unsigned long long>(offset));
    return static_cast<uint32_t>(offset);
}

} // namespace

size_t
encodedTraceBytes(const workload::Trace &trace)
{
    return kTraceHeaderBytes + trace.ops.size() * kTraceRecordBytes;
}

std::vector<uint8_t>
encodeTrace(const workload::Trace &trace)
{
    using workload::OpKind;
    std::vector<uint8_t> out(encodedTraceBytes(trace), 0);
    putU64(&out[0], kTraceMagic);
    putU32(&out[8], trace.hasLifecycleOps() ? kTraceVersionLifecycle
                                            : kTraceVersionClassic);
    putU32(&out[12], static_cast<uint32_t>(kTraceRecordBytes));
    putU64(&out[16], trace.ops.size());

    uint8_t *rec = out.data() + kTraceHeaderBytes;
    for (size_t i = 0; i < trace.ops.size(); ++i,
                rec += kTraceRecordBytes) {
        const workload::TraceOp &op = trace.ops[i];
        rec[0] = static_cast<uint8_t>(op.kind);
        switch (op.kind) {
          case OpKind::Malloc:
            putU64(&rec[8], op.id);
            putU64(&rec[16], op.size);
            break;
          case OpKind::Free:
            putU64(&rec[8], op.id);
            break;
          case OpKind::StorePtr:
            putU32(&rec[4], auxOrDie(op.offset, i));
            putU64(&rec[8], op.src);
            putU64(&rec[16], op.dst);
            break;
          case OpKind::StoreData:
            putU32(&rec[4], auxOrDie(op.offset, i));
            putU64(&rec[8], op.dst);
            break;
          case OpKind::RootPtr:
            putU32(&rec[4], auxOrDie(op.offset, i));
            putU64(&rec[8], op.src);
            break;
          case OpKind::SpawnTenant:
          case OpKind::RetireTenant:
            putU64(&rec[8], op.id);
            break;
        }
        putF64(&rec[24], op.dt);
    }
    return out;
}

workload::Trace
decodeTrace(const uint8_t *data, size_t size)
{
    using workload::OpKind;
    if (size < kTraceHeaderBytes)
        fatal("binary trace truncated: %zu bytes, need a %zu-byte "
              "header",
              size, kTraceHeaderBytes);
    if (getU64(&data[0]) != kTraceMagic)
        fatal("not a binary cherivoke trace (bad magic)");
    const uint32_t version = getU32(&data[8]);
    if (version != kTraceVersionClassic &&
        version != kTraceVersionLifecycle)
        fatal("binary trace version %u unsupported (expected %u "
              "or %u)",
              version, kTraceVersionClassic, kTraceVersionLifecycle);
    const uint32_t stride = getU32(&data[12]);
    if (stride != kTraceRecordBytes)
        fatal("binary trace record stride %u unsupported "
              "(expected %zu)",
              stride, kTraceRecordBytes);
    const uint64_t count = getU64(&data[16]);
    // Division form: the multiplied bound could overflow uint64 for
    // a corrupt header and bypass the check. Mid-stream truncation
    // is record-level damage — one tenant's bad trace, not a
    // harness misconfiguration — so it goes through the typed fault
    // channel a multi-tenant host can contain.
    if (count > (size - kTraceHeaderBytes) / kTraceRecordBytes)
        heapFault(HeapFaultKind::CodecCorruption,
                  "binary trace truncated: header promises %llu "
                  "records but only %zu bytes follow",
                  static_cast<unsigned long long>(count),
                  size - kTraceHeaderBytes);

    workload::Trace trace;
    trace.ops.resize(count);
    const uint8_t kind_limit =
        version >= kTraceVersionLifecycle
            ? workload::kMaxOpKind
            : static_cast<uint8_t>(OpKind::RootPtr);
    const uint8_t *rec = data + kTraceHeaderBytes;
    for (uint64_t i = 0; i < count; ++i, rec += kTraceRecordBytes) {
        workload::TraceOp &op = trace.ops[i];
        const uint8_t kind = rec[0];
        if (kind > kind_limit)
            heapFault(HeapFaultKind::CodecCorruption,
                      "binary trace record %llu: unknown op kind %u "
                      "for version %u",
                      static_cast<unsigned long long>(i), kind,
                      version);
        op.kind = static_cast<OpKind>(kind);
        switch (op.kind) {
          case OpKind::Malloc:
            op.id = getU64(&rec[8]);
            op.size = getU64(&rec[16]);
            break;
          case OpKind::Free:
            op.id = getU64(&rec[8]);
            break;
          case OpKind::StorePtr:
            op.offset = getU32(&rec[4]);
            op.src = getU64(&rec[8]);
            op.dst = getU64(&rec[16]);
            break;
          case OpKind::StoreData:
            op.offset = getU32(&rec[4]);
            op.dst = getU64(&rec[8]);
            break;
          case OpKind::RootPtr:
            op.offset = getU32(&rec[4]);
            op.src = getU64(&rec[8]);
            break;
          case OpKind::SpawnTenant:
          case OpKind::RetireTenant:
            op.id = getU64(&rec[8]);
            break;
        }
        op.dt = getF64(&rec[24]);
    }
    return trace;
}

workload::Trace
decodeTrace(const std::vector<uint8_t> &bytes)
{
    return decodeTrace(bytes.data(), bytes.size());
}

bool
isBinaryTrace(const uint8_t *data, size_t size)
{
    return size >= sizeof(uint64_t) && getU64(data) == kTraceMagic;
}

uint32_t
traceVersion(const uint8_t *data, size_t size)
{
    if (!isBinaryTrace(data, size) || size < kTraceHeaderBytes)
        return 0;
    return getU32(&data[8]);
}

void
saveTraceFile(const std::string &path, const workload::Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    const std::vector<uint8_t> bytes = encodeTrace(trace);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    if (!os)
        fatal("short write to '%s'", path.c_str());
}

workload::Trace
loadTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open '%s'", path.c_str());
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    if (isBinaryTrace(bytes.data(), bytes.size()))
        return decodeTrace(bytes);
    std::istringstream text(
        std::string(bytes.begin(), bytes.end()));
    return workload::Trace::load(text);
}

} // namespace tenant
} // namespace cherivoke

#include "tenant/mutator_threads.hh"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "alloc/thread_context.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace tenant {

namespace {

double
wallNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** FNV-1a accumulation. */
inline uint64_t
fnv(uint64_t h, uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

unsigned
mutatorExecutorOf(const workload::TraceOp &op, uint64_t index,
                  unsigned threads)
{
    CHERIVOKE_ASSERT(threads > 0);
    switch (op.kind) {
      case workload::OpKind::Malloc:
        // The allocating thread owns the chunk.
        return mutatorOwnerOf(op.id, threads);
      case workload::OpKind::Free:
        // Frees rotate across threads, so a share of (M-1)/M of
        // them is genuinely remote.
        return static_cast<unsigned>(index % threads);
      case workload::OpKind::StorePtr:
      case workload::OpKind::StoreData:
        // Stores run where the destination object lives.
        return mutatorOwnerOf(op.dst, threads);
      case workload::OpKind::RootPtr:
        return static_cast<unsigned>(index % threads);
      case workload::OpKind::SpawnTenant:
      case workload::OpKind::RetireTenant:
        // Control ops: thread 0, no allocator effect.
        return 0;
    }
    return 0;
}

RacePlan
planMutatorRace(const workload::Trace &trace, size_t opsLimit,
                const MutatorConfig &config,
                const std::vector<uint64_t> &epoch_ops)
{
    if (config.threads == 0)
        fatal("mutator front-end needs at least one thread");
    if (config.remoteBatch == 0)
        fatal("remote-free batch capacity must be positive");
    CHERIVOKE_ASSERT(
        std::is_sorted(epoch_ops.begin(), epoch_ops.end()),
        "(epoch boundaries must be in op order)");

    const unsigned m = config.threads;
    RacePlan plan;
    plan.config = config;
    plan.perThread.resize(m);

    const size_t limit = std::min(opsLimit, trace.ops.size());
    // Mirror the serial replay's liveness semantics so effectiveness
    // — hence ownership transfer — is a pure function of the trace.
    std::unordered_map<uint64_t, uint64_t> live;
    live.reserve(limit / 4 + 16);

    size_t next_epoch = 0;
    auto emit_marks_through = [&](uint64_t index) {
        uint64_t last_mark = UINT64_MAX;
        while (next_epoch < epoch_ops.size() &&
               epoch_ops[next_epoch] <= index) {
            const uint64_t at = epoch_ops[next_epoch++];
            if (at == last_mark)
                continue; // back-to-back epochs at one op: one flush
            last_mark = at;
            ++plan.epochMarks;
            for (unsigned t = 0; t < m; ++t) {
                RaceItem mark;
                mark.kind = RaceItem::Kind::EpochMark;
                mark.index = at;
                plan.perThread[t].push_back(mark);
            }
        }
    };

    for (size_t i = 0; i < limit; ++i) {
        const workload::TraceOp &op = trace.ops[i];
        // A boundary value b means "the epoch opened after ops
        // [0, b) were applied", so its mark precedes op b.
        emit_marks_through(i);
        RaceItem item;
        item.kind = RaceItem::Kind::Op;
        item.op = op.kind;
        item.index = i;
        item.id = op.id;
        const unsigned executor =
            mutatorExecutorOf(op, i, m);
        switch (op.kind) {
          case workload::OpKind::Malloc: {
            item.owner = mutatorOwnerOf(op.id, m);
            item.bytes = op.size;
            // The replayer's emplace keeps the first mapping: a
            // second malloc of a live id leaks (never freed by id).
            item.effective = live.emplace(op.id, op.size).second;
            if (item.effective)
                ++plan.effectiveMallocs;
            break;
          }
          case workload::OpKind::Free: {
            item.owner = mutatorOwnerOf(op.id, m);
            auto it = live.find(op.id);
            item.effective = it != live.end();
            if (item.effective) {
                item.bytes = it->second;
                live.erase(it);
                ++plan.effectiveFrees;
                if (executor != item.owner)
                    ++plan.remoteFrees;
            }
            break;
          }
          default:
            break; // stores/roots/lifecycle: no allocator effect
        }
        plan.perThread[executor].push_back(item);
        ++plan.opsPlanned;
    }
    // Boundaries at or past the end of the prefix (an epoch opened
    // by the very last op) still rendezvous once.
    emit_marks_through(UINT64_MAX);
    return plan;
}

namespace {

/** Shared race state plus the per-thread worker body. */
struct Race
{
    const RacePlan &plan;
    std::vector<std::unique_ptr<RemoteFreeQueue>> queues;
    std::barrier<> barrier;
    std::vector<MutatorThreadStats> stats;
    std::mutex error_mutex;
    std::exception_ptr error;

    explicit Race(const RacePlan &p)
        : plan(p), barrier(static_cast<ptrdiff_t>(p.config.threads)),
          stats(p.config.threads)
    {
        for (unsigned t = 0; t < p.config.threads; ++t)
            queues.push_back(std::make_unique<RemoteFreeQueue>());
    }

    void fail(std::exception_ptr e)
    {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error)
            error = e;
    }

    /** One inbox drain pass; @p to_empty spins until the queue's
     *  counters agree (legal only when producers are quiesced). */
    void drainInbox(unsigned t, alloc::ThreadAllocContext &ctx,
                    MutatorThreadStats &st, bool to_empty)
    {
        ++st.drains;
        uint64_t got = 0;
        for (;;) {
            std::unique_ptr<FreeBatch> batch =
                queues[t]->tryDequeue();
            if (!batch) {
                if (to_empty && !queues[t]->drained())
                    continue; // producer mid-publish: spin
                break;
            }
            ++got;
            ++st.batchesDrained;
            for (const RemoteFree &f : batch->entries) {
                ctx.noteRemoteFree(f.id, f.bytes);
                ++st.remoteApplied;
            }
        }
        st.maxBatchesPerDrain =
            std::max(st.maxBatchesPerDrain, got);
    }

    void work(unsigned t)
    {
        const unsigned m = plan.config.threads;
        alloc::ThreadAllocContext ctx(t);
        MutatorThreadStats st;
        st.thread = t;
        const double t0 = wallNow();

        // One sender per remote owner (own slot stays empty).
        std::vector<std::unique_ptr<RemoteSender>> senders(m);
        for (unsigned o = 0; o < m; ++o) {
            if (o != t) {
                senders[o] = std::make_unique<RemoteSender>(
                    t, *queues[o], plan.config.remoteBatch);
            }
        }
        auto flush_all = [&]() {
            for (unsigned o = 0; o < m; ++o) {
                if (senders[o])
                    senders[o]->flush();
            }
        };

        for (const RaceItem &item : plan.perThread[t]) {
            if (item.kind == RaceItem::Kind::EpochMark) {
                // Epoch/drain contract: nothing may be in flight
                // while the revocation set freezes. Flush, meet
                // every thread, drain to provably empty, and only
                // then let anyone produce again.
                flush_all();
                barrier.arrive_and_wait();
                drainInbox(t, ctx, st, /*to_empty=*/true);
                CHERIVOKE_ASSERT(queues[t]->drained(),
                                 "(remote frees in flight at an "
                                 "epoch boundary)");
                CHERIVOKE_ASSERT(ctx.earlyFreeCount() == 0,
                                 "(early free past its epoch "
                                 "barrier)");
                st.ownedLiveBytesAtEpoch.push_back(
                    ctx.ownedLiveBytes());
                ++st.epochFlushes;
                barrier.arrive_and_wait();
                continue;
            }
            ++st.ops;
            switch (item.op) {
              case workload::OpKind::Malloc:
                // The malloc slow path is the owner's natural drain
                // point (snmalloc: allocation looks at the remote
                // queue before refilling).
                drainInbox(t, ctx, st, /*to_empty=*/false);
                ++st.mallocs;
                if (item.effective)
                    ctx.noteMalloc(item.id, item.bytes);
                break;
              case workload::OpKind::Free:
                if (!item.effective)
                    break;
                if (item.owner == t) {
                    ctx.noteLocalFree(item.id);
                    ++st.localFrees;
                } else {
                    senders[item.owner]->send(
                        RemoteFree{item.id, item.bytes});
                    ++st.remoteSent;
                }
                break;
              default:
                break; // modelled elsewhere; the race only times it
            }
        }

        // Teardown: flush stragglers, meet every thread, then drain
        // what is addressed to us — nobody produces after the
        // barrier, so "drained" is exact and final.
        flush_all();
        barrier.arrive_and_wait();
        drainInbox(t, ctx, st, /*to_empty=*/true);
        CHERIVOKE_ASSERT(queues[t]->drained(),
                         "(remote frees lost in teardown)");
        CHERIVOKE_ASSERT(ctx.earlyFreeCount() == 0,
                         "(remote free without a matching malloc)");

        for (unsigned o = 0; o < m; ++o) {
            if (senders[o])
                st.batchesSent += senders[o]->sentBatches();
        }
        st.quarantinedChunks = ctx.quarantinedChunks();
        st.quarantinedBytes = ctx.quarantinedBytes();
        st.ownedLiveBytesEnd = ctx.ownedLiveBytes();
        st.wallSec = wallNow() - t0;
        stats[t] = std::move(st);
    }

    void workGuarded(unsigned t)
    {
        try {
            work(t);
        } catch (...) {
            fail(std::current_exception());
            // Leave the barrier so surviving threads cannot wait
            // forever on a participant that threw.
            barrier.arrive_and_drop();
        }
    }
};

} // namespace

uint64_t
MutatorRaceResult::fingerprint() const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    h = fnv(h, config.threads);
    h = fnv(h, config.remoteBatch);
    h = fnv(h, opsExecuted);
    h = fnv(h, effectiveMallocs);
    h = fnv(h, effectiveFrees);
    h = fnv(h, localFrees);
    h = fnv(h, remoteFrees);
    h = fnv(h, batches);
    h = fnv(h, drains);
    h = fnv(h, epochBarriers);
    h = fnv(h, quarantinedBytes);
    for (const MutatorThreadStats &st : perThread) {
        h = fnv(h, st.thread);
        h = fnv(h, st.ops);
        h = fnv(h, st.mallocs);
        h = fnv(h, st.localFrees);
        h = fnv(h, st.remoteSent);
        h = fnv(h, st.remoteApplied);
        h = fnv(h, st.batchesSent);
        h = fnv(h, st.batchesDrained);
        h = fnv(h, st.drains);
        h = fnv(h, st.epochFlushes);
        h = fnv(h, st.quarantinedChunks);
        h = fnv(h, st.quarantinedBytes);
        h = fnv(h, st.ownedLiveBytesEnd);
        for (uint64_t v : st.ownedLiveBytesAtEpoch)
            h = fnv(h, v);
    }
    return h;
}

MutatorRaceResult
runMutatorRace(const RacePlan &plan)
{
    const unsigned m = plan.config.threads;
    Race race(plan);

    const double t0 = wallNow();
    if (m == 1) {
        // Degenerate front-end: no peers to race, run inline (the
        // barrier has one participant and never blocks).
        race.workGuarded(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(m);
        for (unsigned t = 0; t < m; ++t)
            threads.emplace_back([&race, t] {
                race.workGuarded(t);
            });
        for (std::thread &th : threads)
            th.join();
    }
    if (race.error)
        std::rethrow_exception(race.error);

    MutatorRaceResult result;
    result.config = plan.config;
    result.hwConcurrency = std::thread::hardware_concurrency();
    result.wallSec = wallNow() - t0;
    result.perThread = std::move(race.stats);

    uint64_t sent = 0, applied = 0, batches_sent = 0,
             batches_drained = 0;
    for (const MutatorThreadStats &st : result.perThread) {
        result.opsExecuted += st.ops;
        result.localFrees += st.localFrees;
        result.remoteFrees += st.remoteSent;
        result.batches += st.batchesSent;
        result.drains += st.drains;
        result.quarantinedBytes += st.quarantinedBytes;
        sent += st.remoteSent;
        applied += st.remoteApplied;
        batches_sent += st.batchesSent;
        batches_drained += st.batchesDrained;
    }
    result.effectiveMallocs = plan.effectiveMallocs;
    result.effectiveFrees = plan.effectiveFrees;
    result.epochBarriers = plan.epochMarks;

    // Conservation: message passing loses nothing and invents
    // nothing, whatever the interleaving was.
    CHERIVOKE_ASSERT(result.opsExecuted == plan.opsPlanned);
    CHERIVOKE_ASSERT(sent == applied,
                     "(remote frees sent != applied)");
    CHERIVOKE_ASSERT(batches_sent == batches_drained,
                     "(free batches published != drained)");
    CHERIVOKE_ASSERT(sent == plan.remoteFrees);
    CHERIVOKE_ASSERT(result.localFrees + sent ==
                     plan.effectiveFrees);
    return result;
}

MutatorRaceResult
runMutatorRace(const workload::Trace &trace, size_t opsLimit,
               const MutatorConfig &config,
               const std::vector<uint64_t> &epoch_ops)
{
    return runMutatorRace(
        planMutatorRace(trace, opsLimit, config, epoch_ops));
}

} // namespace tenant
} // namespace cherivoke

#include "tenant/scheduler.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace tenant {

TenantScheduler::TenantScheduler(std::vector<double> weights)
{
    CHERIVOKE_ASSERT(!weights.empty());
    entries_.reserve(weights.size());
    for (double w : weights) {
        if (w <= 0)
            fatal("tenant weight must be positive (got %g)", w);
        entries_.push_back(Entry{w, 0.0, false});
        total_weight_ += w;
    }
    active_ = entries_.size();
}

void
TenantScheduler::markDone(size_t index)
{
    CHERIVOKE_ASSERT(index < entries_.size());
    Entry &e = entries_[index];
    if (e.done)
        return;
    e.done = true;
    e.credit = 0;
    total_weight_ -= e.weight;
    --active_;
}

size_t
TenantScheduler::next()
{
    CHERIVOKE_ASSERT(!allDone(), "(next() with no runnable tenants)");
    size_t winner = entries_.size();
    for (size_t i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (e.done)
            continue;
        e.credit += e.weight;
        if (winner == entries_.size() ||
            e.credit > entries_[winner].credit)
            winner = i;
    }
    entries_[winner].credit -= total_weight_;
    return winner;
}

} // namespace tenant
} // namespace cherivoke

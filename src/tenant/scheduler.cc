#include "tenant/scheduler.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace tenant {

TenantScheduler::TenantScheduler(std::vector<double> weights)
{
    CHERIVOKE_ASSERT(!weights.empty());
    entries_.reserve(weights.size());
    for (double w : weights)
        arrive(entries_.size(), w);
}

void
TenantScheduler::renormalize()
{
    // Exact recomputation in slot order: the total is a pure
    // function of the current runnable set, independent of the
    // arrival/departure history that produced it.
    total_weight_ = 0;
    active_ = 0;
    for (const Entry &e : entries_) {
        if (e.done)
            continue;
        total_weight_ += e.weight;
        ++active_;
    }
}

void
TenantScheduler::arrive(size_t index, double weight)
{
    if (weight <= 0)
        fatal("tenant weight must be positive (got %g)", weight);
    CHERIVOKE_ASSERT(index <= entries_.size(),
                     "(arrive at a slot beyond the next fresh one)");
    if (index == entries_.size()) {
        entries_.push_back(Entry{weight, 0.0, false});
    } else {
        Entry &e = entries_[index];
        CHERIVOKE_ASSERT(e.done, "(arrive at an occupied slot)");
        e = Entry{weight, 0.0, false};
    }
    renormalize();
}

void
TenantScheduler::markDone(size_t index)
{
    CHERIVOKE_ASSERT(index < entries_.size());
    Entry &e = entries_[index];
    if (e.done)
        return;
    e.done = true;
    e.credit = 0;
    renormalize();
}

size_t
TenantScheduler::next()
{
    CHERIVOKE_ASSERT(!allDone(), "(next() with no runnable tenants)");
    size_t winner = entries_.size();
    for (size_t i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (e.done)
            continue;
        e.credit += e.weight;
        if (winner == entries_.size() ||
            e.credit > entries_[winner].credit)
            winner = i;
    }
    entries_[winner].credit -= total_weight_;
    return winner;
}

} // namespace tenant
} // namespace cherivoke

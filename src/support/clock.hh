/**
 * @file
 * A minimal injectable monotonic clock. The revocation supervisor's
 * Watchdog consumes timestamps rather than reading time itself, so
 * production code passes a SteadyClock while tests (and anything
 * that needs deterministic replay) pass a FakeClock they advance by
 * hand. Nothing in the deterministic modelled pipeline may branch on
 * SteadyClock values — wall time is strictly an observation channel
 * (overrun detection on real hardware), never a replayed input.
 */

#ifndef CHERIVOKE_SUPPORT_CLOCK_HH
#define CHERIVOKE_SUPPORT_CLOCK_HH

#include <chrono>
#include <cstdint>

namespace cherivoke {
namespace support {

/** Monotonic nanosecond clock interface. */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Monotonic now, in nanoseconds from an arbitrary origin. */
    virtual uint64_t nowNs() = 0;
};

/** The production clock: std::chrono::steady_clock. */
class SteadyClock : public Clock
{
  public:
    uint64_t nowNs() override
    {
        const auto t = std::chrono::steady_clock::now();
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t.time_since_epoch())
                .count());
    }
};

/** A hand-cranked clock for deterministic watchdog tests. */
class FakeClock : public Clock
{
  public:
    explicit FakeClock(uint64_t start_ns = 0) : now_(start_ns) {}

    uint64_t nowNs() override { return now_; }

    void set(uint64_t ns) { now_ = ns; }
    void advance(uint64_t ns) { now_ += ns; }

  private:
    uint64_t now_;
};

} // namespace support
} // namespace cherivoke

#endif // CHERIVOKE_SUPPORT_CLOCK_HH

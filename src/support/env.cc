#include "support/env.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "support/logging.hh"

extern char **environ;

namespace cherivoke {

namespace {

std::vector<EnvKnob> &
knobRegistry()
{
    static std::vector<EnvKnob> registry;
    return registry;
}

void
recordKnob(const char *name, std::string value, bool from_env)
{
    for (EnvKnob &knob : knobRegistry()) {
        if (knob.name == name) {
            knob.value = std::move(value);
            knob.fromEnv = from_env;
            return;
        }
    }
    knobRegistry().push_back(EnvKnob{name, std::move(value), from_env});
}

std::string
renderF64(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", value);
    return buf;
}

/** Classic Levenshtein distance, small-string sizes only. */
size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<size_t> row(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        size_t diag = row[0];
        row[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            const size_t up = row[j];
            const size_t subst =
                diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
            diag = up;
        }
    }
    return row[b.size()];
}

} // namespace

const std::vector<std::string> &
knownEnvKnobs()
{
    // Every CHERIVOKE_* environment variable any binary in this repo
    // reads. A knob added anywhere must be added here, or
    // validateEnvironment() rejects it — which is the point: the
    // table is the single registry a typo is checked against.
    static const std::vector<std::string> known = {
        "CHERIVOKE_ALLOCS_PER_COLOR",
        "CHERIVOKE_ALLOC_CHURN",
        "CHERIVOKE_ALLOC_LIVE",
        "CHERIVOKE_BACKEND",
        "CHERIVOKE_BENCH_ALLOCS",
        "CHERIVOKE_BENCH_SECS",
        "CHERIVOKE_BG_SWEEPER",
        "CHERIVOKE_COLORS",
        "CHERIVOKE_EPOCH_DEADLINE_MS",
        "CHERIVOKE_FAULT_PLAN",
        "CHERIVOKE_FAULT_SEED",
        "CHERIVOKE_FAULT_SUPERVISION_ONLY",
        "CHERIVOKE_ID_COMPACT",
        "CHERIVOKE_MSGPASS_ENTRIES",
        "CHERIVOKE_MUTATOR_OPS",
        "CHERIVOKE_MUTATOR_THREADS",
        "CHERIVOKE_PAGE_BUDGET_MIB",
        "CHERIVOKE_PAINT_SHARDS",
        "CHERIVOKE_POLICY",
        "CHERIVOKE_RECYCLE_FRACTION",
        "CHERIVOKE_REMOTE_BATCH",
        "CHERIVOKE_SWEEPER_RETRIES",
        "CHERIVOKE_TENANTS",
        "CHERIVOKE_TENANT_AGG_ALLOCS",
        "CHERIVOKE_TENANT_BACKENDS",
        "CHERIVOKE_TENANT_CHURN",
        "CHERIVOKE_TENANT_HEAP_MIB",
        "CHERIVOKE_TENANT_MAX",
        "CHERIVOKE_TENANT_POLICIES",
        "CHERIVOKE_TENANT_SCOPE",
        "CHERIVOKE_TENANT_WEIGHTS",
        "CHERIVOKE_TEST_KNOB",
        "CHERIVOKE_THREADS",
    };
    return known;
}

void
validateEnvironment()
{
    for (char **env = environ; env && *env; ++env) {
        const std::string entry(*env);
        if (entry.rfind("CHERIVOKE_", 0) != 0)
            continue;
        const std::string name =
            entry.substr(0, std::min(entry.find('='), entry.size()));
        bool known = false;
        for (const std::string &knob : knownEnvKnobs()) {
            if (knob == name) {
                known = true;
                break;
            }
        }
        if (known)
            continue;
        const std::string *nearest = nullptr;
        size_t best = ~size_t{0};
        for (const std::string &knob : knownEnvKnobs()) {
            const size_t d = editDistance(name, knob);
            if (d < best) {
                best = d;
                nearest = &knob;
            }
        }
        fatal("%s: unknown CHERIVOKE_* knob (did you mean %s?)",
              name.c_str(), nearest->c_str());
    }
}

const std::vector<EnvKnob> &
envKnobs()
{
    return knobRegistry();
}

void
printEnvKnobs(std::FILE *out)
{
    if (envKnobs().empty()) {
        std::fprintf(out, "  (none queried)\n");
        return;
    }
    for (const EnvKnob &knob : envKnobs()) {
        std::fprintf(out, "  %-26s = %s (%s)\n", knob.name.c_str(),
                     knob.value.empty() ? "(unset)"
                                        : knob.value.c_str(),
                     knob.fromEnv ? "env" : "default");
    }
}

bool
parseI64(const std::string &text, int64_t &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    out = static_cast<int64_t>(v);
    return true;
}

bool
parseF64(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

void
announceEnvKnobs()
{
    std::fprintf(stderr, "Effective CHERIVOKE_* knobs:\n");
    printEnvKnobs(stderr);
    std::fprintf(stderr, "\n");
}

int64_t
envI64(const char *name, int64_t fallback, int64_t min)
{
    const char *text = std::getenv(name);
    if (!text) {
        recordKnob(name, std::to_string(fallback), false);
        return fallback;
    }
    int64_t value = 0;
    if (!parseI64(text, value))
        fatal("%s: expected an integer, got '%s'", name, text);
    if (value < min)
        fatal("%s: %lld is below the minimum %lld", name,
              static_cast<long long>(value),
              static_cast<long long>(min));
    recordKnob(name, std::to_string(value), true);
    return value;
}

double
envF64(const char *name, double fallback, double min)
{
    const char *text = std::getenv(name);
    if (!text) {
        recordKnob(name, renderF64(fallback), false);
        return fallback;
    }
    double value = 0;
    if (!parseF64(text, value))
        fatal("%s: expected a number, got '%s'", name, text);
    if (value < min || (min == 0 && value <= 0))
        fatal("%s: %g is out of range (must be %s %g)", name, value,
              min == 0 ? ">" : ">=", min);
    recordKnob(name, renderF64(value), true);
    return value;
}

std::vector<double>
envF64List(const char *name)
{
    const char *text = std::getenv(name);
    recordKnob(name, text ? text : "", text != nullptr);
    if (!text)
        return {};
    std::vector<double> values;
    const std::string all(text);
    size_t pos = 0;
    while (pos <= all.size()) {
        const size_t comma = std::min(all.find(',', pos), all.size());
        const std::string item = all.substr(pos, comma - pos);
        double value = 0;
        if (!parseF64(item, value) || value <= 0)
            fatal("%s: expected a comma-separated list of positive "
                  "numbers, got '%s'",
                  name, text);
        values.push_back(value);
        pos = comma + 1;
    }
    return values;
}

std::string
envStr(const char *name, const std::string &fallback)
{
    const char *text = std::getenv(name);
    recordKnob(name, text ? text : fallback, text != nullptr);
    return text ? text : fallback;
}

std::vector<std::string>
envStrList(const char *name)
{
    const char *text = std::getenv(name);
    recordKnob(name, text ? text : "", text != nullptr);
    if (!text)
        return {};
    std::vector<std::string> items;
    const std::string all(text);
    size_t pos = 0;
    while (pos <= all.size()) {
        const size_t comma = std::min(all.find(',', pos), all.size());
        const std::string item = all.substr(pos, comma - pos);
        if (item.empty())
            fatal("%s: empty item in list '%s'", name, text);
        items.push_back(item);
        pos = comma + 1;
    }
    return items;
}

} // namespace cherivoke

#include "support/fault.hh"

#include "support/env.hh"
#include "support/rng.hh"

namespace cherivoke {

const char *
heapFaultKindName(HeapFaultKind kind)
{
    switch (kind) {
      case HeapFaultKind::DoubleFree: return "double-free";
      case HeapFaultKind::WildFree: return "wild-free";
      case HeapFaultKind::HeaderCorruption:
        return "header-corruption";
      case HeapFaultKind::OutOfMemory: return "oom";
      case HeapFaultKind::CodecCorruption: return "codec-corruption";
      case HeapFaultKind::SweeperFailure: return "sweeper-failure";
    }
    return "unknown";
}

const char *
sweeperFaultKindName(SweeperFaultKind kind)
{
    switch (kind) {
      case SweeperFaultKind::Stall: return "sweeper-stall";
      case SweeperFaultKind::Crash: return "sweeper-crash";
      case SweeperFaultKind::Slow: return "sweeper-slow";
    }
    return "unknown";
}

bool
parseSweeperFaultKind(const std::string &name, SweeperFaultKind &out)
{
    for (size_t i = 0; i < kNumSweeperFaultKinds; ++i) {
        const auto kind = static_cast<SweeperFaultKind>(i);
        if (name == sweeperFaultKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

bool
parseHeapFaultKind(const std::string &name, HeapFaultKind &out)
{
    for (size_t i = 0; i < kNumHeapFaultKinds; ++i) {
        const auto kind = static_cast<HeapFaultKind>(i);
        if (name == heapFaultKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::string
FaultPlan::text() const
{
    std::string out;
    for (const FaultInjection &fi : injections) {
        if (!out.empty())
            out += ',';
        out += heapFaultKindName(fi.kind);
        out += '@';
        out += std::to_string(fi.tenantId);
        out += ':';
        out += std::to_string(fi.opIndex);
    }
    for (const SweeperInjection &si : sweeper) {
        if (!out.empty())
            out += ',';
        out += sweeperFaultKindName(si.kind);
        out += '@';
        out += std::to_string(si.domain);
        out += ':';
        out += std::to_string(si.epoch);
        if (si.factor != 1) {
            out += ':';
            out += std::to_string(si.factor);
        }
    }
    return out;
}

FaultPlan
parseFaultPlan(const std::string &text)
{
    FaultPlan plan;
    if (text.empty())
        return plan;
    size_t pos = 0;
    while (pos <= text.size()) {
        const size_t comma = std::min(text.find(',', pos),
                                      text.size());
        const std::string item = text.substr(pos, comma - pos);
        const size_t at = item.find('@');
        const size_t colon = item.find(':', at == std::string::npos
                                                  ? 0 : at + 1);
        if (at == std::string::npos || colon == std::string::npos)
            fatal("fault plan: expected kind@tenant:op, got '%s'",
                  item.c_str());
        const std::string kind = item.substr(0, at);
        SweeperFaultKind sweeper_kind;
        if (parseSweeperFaultKind(kind, sweeper_kind)) {
            // `kind@domain:epoch[:factor]` — the sweeper grammar.
            SweeperInjection si;
            si.kind = sweeper_kind;
            const size_t colon2 = item.find(':', colon + 1);
            int64_t domain = 0, epoch = 0, factor = 1;
            if (!parseI64(item.substr(at + 1, colon - at - 1),
                          domain) ||
                domain < 0)
                fatal("fault plan: bad domain in '%s'",
                      item.c_str());
            const size_t epoch_end =
                colon2 == std::string::npos ? item.size() : colon2;
            if (!parseI64(
                    item.substr(colon + 1, epoch_end - colon - 1),
                    epoch) ||
                epoch < 0)
                fatal("fault plan: bad epoch in '%s'", item.c_str());
            if (colon2 != std::string::npos) {
                if (!parseI64(item.substr(colon2 + 1), factor) ||
                    factor < 1)
                    fatal("fault plan: bad factor in '%s'",
                          item.c_str());
            }
            si.domain = static_cast<uint64_t>(domain);
            si.epoch = static_cast<uint64_t>(epoch);
            si.factor = static_cast<uint64_t>(factor);
            plan.sweeper.push_back(si);
            pos = comma + 1;
            continue;
        }
        FaultInjection fi;
        if (!parseHeapFaultKind(kind, fi.kind))
            fatal("fault plan: unknown fault kind '%s' (expected "
                  "double-free, wild-free, header-corruption, oom, "
                  "codec-corruption, sweeper-stall, sweeper-crash "
                  "or sweeper-slow)",
                  kind.c_str());
        int64_t tenant = 0, op = 0;
        if (!parseI64(item.substr(at + 1, colon - at - 1), tenant) ||
            tenant < 0)
            fatal("fault plan: bad tenant id in '%s'", item.c_str());
        if (!parseI64(item.substr(colon + 1), op) || op < 0)
            fatal("fault plan: bad op index in '%s'", item.c_str());
        fi.tenantId = static_cast<uint64_t>(tenant);
        fi.opIndex = static_cast<uint64_t>(op);
        plan.injections.push_back(fi);
        pos = comma + 1;
    }
    return plan;
}

FaultPlan
generateFaultPlan(uint64_t seed,
                  const std::vector<uint64_t> &tenant_ids,
                  const std::vector<uint64_t> &op_counts)
{
    CHERIVOKE_ASSERT(tenant_ids.size() == op_counts.size() &&
                         !tenant_ids.empty(),
                     "(fault plan needs one op count per tenant)");
    Rng rng(seed);
    FaultPlan plan;
    for (size_t k = 0; k < kNumInjectableHeapFaultKinds; ++k) {
        FaultInjection fi;
        fi.kind = static_cast<HeapFaultKind>(k);
        const size_t t = rng.nextBounded(tenant_ids.size());
        fi.tenantId = tenant_ids[t];
        // Land strictly inside the trace so the injection actually
        // fires before the tenant finishes (ops >= 1 guaranteed by
        // the max).
        fi.opIndex =
            rng.nextBounded(std::max<uint64_t>(op_counts[t], 1));
        plan.injections.push_back(fi);
    }
    return plan;
}

} // namespace cherivoke

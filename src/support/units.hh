/**
 * @file
 * Size and rate units used throughout the simulator and benches.
 */

#ifndef CHERIVOKE_SUPPORT_UNITS_HH
#define CHERIVOKE_SUPPORT_UNITS_HH

#include <cstdint>
#include <string>

namespace cherivoke {

constexpr uint64_t KiB = 1024;
constexpr uint64_t MiB = 1024 * KiB;
constexpr uint64_t GiB = 1024 * MiB;

/** Capability / shadow-map / tag granule: 16 bytes (paper §3.2). */
constexpr uint64_t kGranuleBytes = 16;
constexpr unsigned kGranuleShift = 4;

/** Capability word size in bytes (CHERI-128). */
constexpr uint64_t kCapBytes = 16;

/** Simulated page size. */
constexpr uint64_t kPageBytes = 4096;
constexpr unsigned kPageShift = 12;

/** Granules per page (4096 / 16). */
constexpr uint64_t kGranulesPerPage = kPageBytes / kGranuleBytes;

/** Default cache-line size in bytes. */
constexpr uint64_t kLineBytes = 64;
constexpr unsigned kLineShift = 6;

/** Capability words per cache line (64 / 16). */
constexpr uint64_t kCapsPerLine = kLineBytes / kCapBytes;

/** Format a byte count as a human-readable string ("12.5 MiB"). */
std::string formatBytes(uint64_t bytes);

/** Format a rate in MiB/s. */
std::string formatRate(double bytes_per_sec);

} // namespace cherivoke

#endif // CHERIVOKE_SUPPORT_UNITS_HH

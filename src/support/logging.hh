/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for unrecoverable
 * user/configuration errors, warn()/inform() are non-fatal status
 * channels. panic() and fatal() throw typed exceptions rather than
 * aborting so that tests can assert on them.
 */

#ifndef CHERIVOKE_SUPPORT_LOGGING_HH
#define CHERIVOKE_SUPPORT_LOGGING_HH

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

namespace cherivoke {

/** Thrown by panic(): an internal invariant of the library broke. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

/** Thrown by fatal(): the caller asked for something unsatisfiable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

namespace detail {

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Global verbosity switch for warn()/inform() (on by default). */
bool &verboseFlag();

} // namespace detail

/** Enable or disable warn()/inform() output (e.g.\ in tests). */
void setVerbose(bool enabled);

/** Report an internal bug and throw PanicError. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        throw PanicError(std::string("panic: ") + fmt);
    } else {
        throw PanicError(
            "panic: " +
            detail::formatMessage(fmt, std::forward<Args>(args)...));
    }
}

/** Report an unrecoverable user error and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        throw FatalError(std::string("fatal: ") + fmt);
    } else {
        throw FatalError(
            "fatal: " +
            detail::formatMessage(fmt, std::forward<Args>(args)...));
    }
}

/** Print a non-fatal warning to stderr. */
template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    if (!detail::verboseFlag())
        return;
    if constexpr (sizeof...(Args) == 0) {
        std::fprintf(stderr, "warn: %s\n", fmt);
    } else {
        std::fprintf(stderr, "warn: %s\n",
            detail::formatMessage(fmt, std::forward<Args>(args)...)
                .c_str());
    }
}

/** Print an informational status message to stderr. */
template <typename... Args>
void
inform(const char *fmt, Args &&...args)
{
    if (!detail::verboseFlag())
        return;
    if constexpr (sizeof...(Args) == 0) {
        std::fprintf(stderr, "info: %s\n", fmt);
    } else {
        std::fprintf(stderr, "info: %s\n",
            detail::formatMessage(fmt, std::forward<Args>(args)...)
                .c_str());
    }
}

/**
 * Internal-invariant check that survives release builds.
 * Unlike assert(), sim_assert throws PanicError so property tests can
 * exercise failure paths.
 */
#define CHERIVOKE_ASSERT(cond, ...)                                       \
    do {                                                                  \
        if (!(cond))                                                      \
            ::cherivoke::panic("assertion '" #cond "' failed "            \
                               __VA_ARGS__);                              \
    } while (0)

} // namespace cherivoke

#endif // CHERIVOKE_SUPPORT_LOGGING_HH

#include "support/rng.hh"

#include <bit>
#include <cmath>

#include "support/logging.hh"

namespace cherivoke {

namespace {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // xoshiro256** must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = std::rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    CHERIVOKE_ASSERT(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Rng::nextRange(uint64_t lo, uint64_t hi)
{
    CHERIVOKE_ASSERT(lo <= hi);
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 high-quality mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

uint64_t
Rng::nextLogUniform(uint64_t lo, uint64_t hi)
{
    CHERIVOKE_ASSERT(lo > 0 && lo <= hi);
    const double llo = std::log(static_cast<double>(lo));
    const double lhi = std::log(static_cast<double>(hi));
    const double v = std::exp(llo + (lhi - llo) * nextDouble());
    uint64_t r = static_cast<uint64_t>(v);
    if (r < lo)
        r = lo;
    if (r > hi)
        r = hi;
    return r;
}

double
Rng::nextExponential(double mean)
{
    CHERIVOKE_ASSERT(mean > 0);
    double u = nextDouble();
    if (u <= 0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    CHERIVOKE_ASSERT(!weights.empty());
    double total = 0;
    for (double w : weights)
        total += w;
    CHERIVOKE_ASSERT(total > 0);
    double r = nextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace cherivoke

#include "support/units.hh"

#include <cstdio>

namespace cherivoke {

std::string
formatBytes(uint64_t bytes)
{
    char buf[64];
    if (bytes >= GiB) {
        std::snprintf(buf, sizeof(buf), "%.2f GiB",
                      static_cast<double>(bytes) / GiB);
    } else if (bytes >= MiB) {
        std::snprintf(buf, sizeof(buf), "%.2f MiB",
                      static_cast<double>(bytes) / MiB);
    } else if (bytes >= KiB) {
        std::snprintf(buf, sizeof(buf), "%.2f KiB",
                      static_cast<double>(bytes) / KiB);
    } else {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

std::string
formatRate(double bytes_per_sec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f MiB/s",
                  bytes_per_sec / static_cast<double>(MiB));
    return buf;
}

} // namespace cherivoke

/**
 * @file
 * Bit-manipulation utilities shared across the capability codec, the
 * shadow map, and the tag table.
 */

#ifndef CHERIVOKE_SUPPORT_BITOPS_HH
#define CHERIVOKE_SUPPORT_BITOPS_HH

#include <bit>
#include <cstdint>
#include <type_traits>

namespace cherivoke {

/** Return a value with the low @p n bits set (n may be 0..64). */
constexpr uint64_t
maskLow(unsigned n)
{
    return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/** Extract bits [lo, lo+width) of @p value. */
constexpr uint64_t
bitsExtract(uint64_t value, unsigned lo, unsigned width)
{
    return (value >> lo) & maskLow(width);
}

/** Insert @p field into bits [lo, lo+width) of @p value. */
constexpr uint64_t
bitsInsert(uint64_t value, unsigned lo, unsigned width, uint64_t field)
{
    const uint64_t m = maskLow(width) << lo;
    return (value & ~m) | ((field << lo) & m);
}

/** True if @p value is a power of two (0 is not). */
constexpr bool
isPowerOf2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Round @p value up to the next multiple of @p align (a power of 2). */
constexpr uint64_t
alignUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of @p align (a power of 2). */
constexpr uint64_t
alignDown(uint64_t value, uint64_t align)
{
    return value & ~(align - 1);
}

/** True if @p value is a multiple of @p align (a power of 2). */
constexpr bool
isAligned(uint64_t value, uint64_t align)
{
    return (value & (align - 1)) == 0;
}

/** Index of the most significant set bit, or -1 for zero. */
constexpr int
msbIndex(uint64_t value)
{
    return value == 0 ? -1 : 63 - std::countl_zero(value);
}

/** Ceiling of log2; log2Ceil(1) == 0. */
constexpr unsigned
log2Ceil(uint64_t value)
{
    if (value <= 1)
        return 0;
    return static_cast<unsigned>(msbIndex(value - 1)) + 1;
}

/** Floor of log2; log2Floor(1) == 0. Undefined for 0. */
constexpr unsigned
log2Floor(uint64_t value)
{
    return static_cast<unsigned>(msbIndex(value));
}

/** Population count convenience wrapper. */
constexpr unsigned
popCount(uint64_t value)
{
    return static_cast<unsigned>(std::popcount(value));
}

} // namespace cherivoke

#endif // CHERIVOKE_SUPPORT_BITOPS_HH

/**
 * @file
 * The typed recoverable-fault channel: errors attributable to a
 * *tenant's own input* (a double free in its trace, a corrupt trace
 * record, its heap blowing the page budget) are raised as HeapFault
 * instead of plain fatal(), so a multi-tenant host can catch the
 * fault, retire just the offending tenant, and keep serving the
 * others. TCB invariant violations (a bug in this library) remain
 * PanicError, and configuration errors remain plain FatalError —
 * neither is ever contained.
 *
 * HeapFault derives from FatalError on purpose: a single-process run
 * that never installs a containment boundary still dies with the
 * same catchable error the pre-fault-channel code threw, so every
 * existing EXPECT_THROW(..., FatalError) contract holds.
 *
 * The file also defines the deterministic fault-injection plan
 * (CHERIVOKE_FAULT_PLAN / CHERIVOKE_FAULT_SEED): a list of
 * (kind, tenant, op-index) injections, either parsed from the strict
 * `kind@tenant:op[,...]` grammar or generated from a seed, that a
 * TenantManager fires through the TraceReplayer hook machinery so
 * every chaos run replays bit-identically.
 */

#ifndef CHERIVOKE_SUPPORT_FAULT_HH
#define CHERIVOKE_SUPPORT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/logging.hh"

namespace cherivoke {

/** What went wrong, from the containment boundary's point of view. */
enum class HeapFaultKind : uint8_t
{
    DoubleFree,       //!< free/realloc of a non-live allocation
    WildFree,         //!< free through an untagged cap or of an
                      //!< address outside the heap
    HeaderCorruption, //!< chunk boundary tag fails sanity checks
    OutOfMemory,      //!< page budget exhausted after escalation
    CodecCorruption,  //!< corrupt record mid-stream in a trace
    SweeperFailure,   //!< background sweeper exhausted its
                      //!< degradation ladder for this domain
};

/**
 * Kinds a seeded plan may inject through the trace-replay hook.
 * SweeperFailure is excluded: it is only ever *raised* by the
 * supervision ladder (driven by the sweeper-* injections below),
 * never planted directly into a tenant's trace.
 */
constexpr size_t kNumInjectableHeapFaultKinds = 5;
constexpr size_t kNumHeapFaultKinds = 6;

/** Stable lowercase name ("double-free", "oom", ...). */
const char *heapFaultKindName(HeapFaultKind kind);

/** Inverse of heapFaultKindName(). @return false on unknown name */
bool parseHeapFaultKind(const std::string &name, HeapFaultKind &out);

/**
 * A recoverable, attributable heap fault. Raised where the fault is
 * detected (allocator, codec, pressure ladder); the tenant id is
 * stamped at the containment boundary, which knows whose op was
 * executing.
 */
class HeapFault : public FatalError
{
  public:
    static constexpr uint64_t kNoTenant = ~uint64_t{0};

    HeapFault(HeapFaultKind kind, const std::string &what)
        : FatalError(what), kind_(kind)
    {}

    HeapFaultKind kind() const { return kind_; }

    uint64_t tenant() const { return tenant_; }
    bool attributed() const { return tenant_ != kNoTenant; }
    void setTenant(uint64_t id) { tenant_ = id; }

  private:
    HeapFaultKind kind_;
    uint64_t tenant_ = kNoTenant;
};

/** Raise a HeapFault of @p kind with a printf-formatted message. */
template <typename... Args>
[[noreturn]] void
heapFault(HeapFaultKind kind, const char *fmt, Args &&...args)
{
    std::string message = "heap fault (";
    message += heapFaultKindName(kind);
    message += "): ";
    if constexpr (sizeof...(Args) == 0) {
        message += fmt;
    } else {
        message +=
            detail::formatMessage(fmt, std::forward<Args>(args)...);
    }
    throw HeapFault(kind, message);
}

/** One planned injection: raise @p kind the first time tenant
 *  @p tenantId is scheduled with >= @p opIndex ops applied. */
struct FaultInjection
{
    HeapFaultKind kind = HeapFaultKind::DoubleFree;
    uint64_t tenantId = 0;
    uint64_t opIndex = 0;
    bool fired = false; //!< consumed by the manager at run time
};

/** Which background-sweeper failure mode to inject. */
enum class SweeperFaultKind : uint8_t
{
    Stall, //!< sweeper stops making progress, never recovers
    Crash, //!< sweeper thread dies mid-epoch (heartbeat stops)
    Slow,  //!< sweeper stalls, but recovers after `factor` retries
};

constexpr size_t kNumSweeperFaultKinds = 3;

/** Stable lowercase name ("sweeper-stall", ...). */
const char *sweeperFaultKindName(SweeperFaultKind kind);

/** Inverse of sweeperFaultKindName(). @return false on unknown */
bool parseSweeperFaultKind(const std::string &name,
                           SweeperFaultKind &out);

/**
 * One planned sweeper injection: afflict the background sweeper of
 * @p domain on its @p epoch-th revocation epoch (0-based ordinal of
 * completed epochs at open time). For Slow, @p factor is how many
 * watchdog retries it takes before the sweeper recovers.
 */
struct SweeperInjection
{
    SweeperFaultKind kind = SweeperFaultKind::Stall;
    uint64_t domain = 0;
    uint64_t epoch = 0;
    uint64_t factor = 1;
    bool fired = false; //!< consumed by the engine at run time
};

/** A deterministic chaos schedule. */
struct FaultPlan
{
    std::vector<FaultInjection> injections;
    std::vector<SweeperInjection> sweeper;

    bool empty() const
    {
        return injections.empty() && sweeper.empty();
    }

    /** Canonical `kind@tenant:op,...` text (parse round-trips).
     *  Sweeper items render as `kind@domain:epoch[:factor]` (the
     *  factor is emitted only when != 1). */
    std::string text() const;
};

/**
 * Strict-parse the `kind@tenant:op[,kind@tenant:op...]` grammar
 * (kinds: double-free, wild-free, header-corruption, oom,
 * codec-corruption, plus the sweeper kinds sweeper-stall,
 * sweeper-crash and sweeper-slow with grammar
 * `kind@domain:epoch[:factor]`). Empty text yields an empty plan;
 * anything malformed — unknown kind, missing separator, non-numeric
 * field, trailing comma — throws FatalError naming the offending
 * token.
 */
FaultPlan parseFaultPlan(const std::string &text);

/**
 * Seed-generate a plan with one injection of every fault kind,
 * spread across @p tenant_ids at op indices below the target
 * tenant's entry in @p op_counts (deterministic xoshiro stream:
 * same seed, same tenants, same counts -> same plan).
 */
FaultPlan generateFaultPlan(uint64_t seed,
                            const std::vector<uint64_t> &tenant_ids,
                            const std::vector<uint64_t> &op_counts);

} // namespace cherivoke

#endif // CHERIVOKE_SUPPORT_FAULT_HH

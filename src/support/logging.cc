#include "support/logging.hh"

#include <cstdarg>
#include <vector>

namespace cherivoke {
namespace detail {

std::string
formatMessage(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(len));
}

bool &
verboseFlag()
{
    static bool verbose = true;
    return verbose;
}

} // namespace detail

void
setVerbose(bool enabled)
{
    detail::verboseFlag() = enabled;
}

} // namespace cherivoke

/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis
 * and property tests.
 *
 * Uses xoshiro256** — fast, high quality, and fully reproducible across
 * platforms (unlike std::mt19937 distributions, whose mapping to ranges
 * is implementation-defined for some std:: distributions).
 */

#ifndef CHERIVOKE_SUPPORT_RNG_HH
#define CHERIVOKE_SUPPORT_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cherivoke {

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) — bound must be nonzero. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t nextRange(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of true. */
    bool nextBool(double p = 0.5);

    /**
     * Geometric-ish allocation-size sample: log-uniform between
     * @p lo and @p hi, which mimics the heavy-tailed size mixes of
     * allocation-intensive programs.
     */
    uint64_t nextLogUniform(uint64_t lo, uint64_t hi);

    /** Exponentially distributed double with the given mean. */
    double nextExponential(double mean);

    /** Pick an index according to a discrete weight vector. */
    size_t nextWeighted(const std::vector<double> &weights);

  private:
    uint64_t s_[4];
};

} // namespace cherivoke

#endif // CHERIVOKE_SUPPORT_RNG_HH

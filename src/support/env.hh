/**
 * @file
 * Strict environment-variable parsing for the bench/experiment
 * harness. An *unset* variable yields the caller's fallback, but a
 * set-and-malformed value (`CHERIVOKE_THREADS=abc`, `=3x`, `=`, out
 * of range…) throws FatalError with the offending text rather than
 * silently falling back — a mistyped sweep configuration must never
 * masquerade as a default run.
 */

#ifndef CHERIVOKE_SUPPORT_ENV_HH
#define CHERIVOKE_SUPPORT_ENV_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace cherivoke {

/**
 * One entry of the knob registry: every env* query below records the
 * knob's name and *effective* value (the parsed environment text, or
 * the caller's fallback rendered as text), so a bench can print the
 * exact configuration it ran under — defaults included — in one
 * format from one place.
 */
struct EnvKnob
{
    std::string name;     //!< CHERIVOKE_* variable name
    std::string value;    //!< effective value, rendered as text
    bool fromEnv = false; //!< true when the environment supplied it
};

/** Strictly parse all of @p text as a decimal integer.
 *  @return false on empty input, trailing garbage, or overflow */
bool parseI64(const std::string &text, int64_t &out);

/** Strictly parse all of @p text as a floating-point number. */
bool parseF64(const std::string &text, double &out);

/**
 * Integer environment knob: @p fallback when unset; fatal() when set
 * but malformed or below @p min.
 */
int64_t envI64(const char *name, int64_t fallback, int64_t min = 1);

/** Floating-point environment knob; fatal() unless value >= @p min
 *  (strictly > when @p min is an exclusive bound of 0). */
double envF64(const char *name, double fallback, double min = 0);

/**
 * Comma-separated list of positive doubles (e.g. tenant scheduling
 * weights, `CHERIVOKE_TENANT_WEIGHTS=2,1,1`). Unset → empty vector;
 * malformed or non-positive entries → fatal().
 */
std::vector<double> envF64List(const char *name);

/** String environment knob: @p fallback when unset (no validation
 *  beyond non-emptiness of the registry record). */
std::string envStr(const char *name, const std::string &fallback);

/**
 * Comma-separated list of raw strings (the caller validates each
 * item, e.g. against a policy or backend name table). Unset → empty
 * vector; set-but-empty items → fatal().
 */
std::vector<std::string> envStrList(const char *name);

/**
 * Reject misspelled knobs: scan the process environment for
 * CHERIVOKE_* variables and fatal() on any name not in the known-knob
 * table, suggesting the nearest known knob by edit distance
 * (`CHERIVOKE_BACKEDN` → "did you mean CHERIVOKE_BACKEND?"). A typo'd
 * knob silently running the default configuration is the one strict
 * parsing cannot catch — the variable is simply never queried.
 * Benches call this before parsing their configuration.
 */
void validateEnvironment();

/** The known-knob table validateEnvironment() checks against (full
 *  CHERIVOKE_-prefixed names, sorted). Exposed for tests. */
const std::vector<std::string> &knownEnvKnobs();

/** Every knob queried so far, in first-query order; a repeated
 *  query updates its recorded value in place. */
const std::vector<EnvKnob> &envKnobs();

/** Print `name = value (env|default)` lines for every recorded
 *  knob (the bench startup "effective knob set" block). */
void printEnvKnobs(std::FILE *out);

/** The full startup block — header, knob lines, blank line — on
 *  stderr, so figure data on stdout stays byte-stable. */
void announceEnvKnobs();

} // namespace cherivoke

#endif // CHERIVOKE_SUPPORT_ENV_HH

/**
 * @file
 * Strict environment-variable parsing for the bench/experiment
 * harness. An *unset* variable yields the caller's fallback, but a
 * set-and-malformed value (`CHERIVOKE_THREADS=abc`, `=3x`, `=`, out
 * of range…) throws FatalError with the offending text rather than
 * silently falling back — a mistyped sweep configuration must never
 * masquerade as a default run.
 */

#ifndef CHERIVOKE_SUPPORT_ENV_HH
#define CHERIVOKE_SUPPORT_ENV_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cherivoke {

/** Strictly parse all of @p text as a decimal integer.
 *  @return false on empty input, trailing garbage, or overflow */
bool parseI64(const std::string &text, int64_t &out);

/** Strictly parse all of @p text as a floating-point number. */
bool parseF64(const std::string &text, double &out);

/**
 * Integer environment knob: @p fallback when unset; fatal() when set
 * but malformed or below @p min.
 */
int64_t envI64(const char *name, int64_t fallback, int64_t min = 1);

/** Floating-point environment knob; fatal() unless value >= @p min
 *  (strictly > when @p min is an exclusive bound of 0). */
double envF64(const char *name, double fallback, double min = 0);

/**
 * Comma-separated list of positive doubles (e.g. tenant scheduling
 * weights, `CHERIVOKE_TENANT_WEIGHTS=2,1,1`). Unset → empty vector;
 * malformed or non-positive entries → fatal().
 */
std::vector<double> envF64List(const char *name);

} // namespace cherivoke

#endif // CHERIVOKE_SUPPORT_ENV_HH
